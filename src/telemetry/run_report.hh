/**
 * @file
 * Unified JSON run reports: one machine-readable document per
 * experiment run, replacing per-bench ad-hoc output formats. A report
 * carries free-form metadata, any number of labelled sim points (the
 * standard SimPointResult fields), and the full metric registry of
 * points that collected telemetry.
 *
 * File placement follows the CSV convention: when HNOC_JSON_DIR is
 * set, writeFile() drops the report (by base name) into that
 * directory, so `HNOC_JSON_DIR=out ./bench/fig07_ur_traffic` collects
 * every report without touching the bench code.
 */

#ifndef HNOC_TELEMETRY_RUN_REPORT_HH
#define HNOC_TELEMETRY_RUN_REPORT_HH

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "noc/sim_harness.hh"
#include "telemetry/profiler.hh"

namespace hnoc
{

class JsonWriter;

/** Builder for one unified JSON run report. */
class RunReport
{
  public:
    /**
     * @param tool producing binary/identity (e.g. "fig01", "hnoc_cli")
     * @param title human description of the run
     */
    RunReport(std::string tool, std::string title);

    /** Attach a free-form metadata string (emitted under "meta"). */
    void meta(const std::string &key, const std::string &value);
    void meta(const std::string &key, double value);

    /**
     * Append one labelled sim point. The standard result fields are
     * exported always; the metric registry too when the point was run
     * with SimPointOptions::collectMetrics.
     */
    void addPoint(const std::string &label, const SimPointResult &res);

    /** Export a standalone merged registry (multi-seed aggregates). */
    void addRegistry(const std::string &label, const MetricRegistry &reg);

    /**
     * Attach the simulator self-profile: merged per-phase wall-clock
     * attribution plus the per-component memory audit. Emitted as the
     * optional `profile` section (wall/memory sub-objects) of the
     * hnoc-run-report-v1 document.
     */
    void setProfile(const Profiler &prof, const MemoryAudit &audit);

    /**
     * Attach the merged stall-cause blame attribution. Emitted as the
     * optional `latency_blame` section of the hnoc-run-report-v1
     * document (schema hnoc-latency-blame-v1).
     */
    void setBlame(const BlameCollector &blame);

    std::size_t points() const { return points_.size(); }

    /** @return the report as a JSON document. */
    std::string json() const;

    /**
     * Write the report to @p path, honoring HNOC_JSON_DIR (see file
     * comment). @return true on success.
     */
    bool writeFile(const std::string &path) const;

  private:
    void writePoint(JsonWriter &w, const std::string &label,
                    const SimPointResult &res) const;

    std::string tool_;
    std::string title_;
    std::vector<std::pair<std::string, std::string>> metaStr_;
    std::vector<std::pair<std::string, double>> metaNum_;
    std::vector<std::pair<std::string, SimPointResult>> points_;
    std::vector<std::pair<std::string, MetricRegistry>> registries_;
    std::unique_ptr<Profiler> profile_;
    MemoryAudit memAudit_;
    std::unique_ptr<BlameCollector> blame_;
};

} // namespace hnoc

#endif // HNOC_TELEMETRY_RUN_REPORT_HH
