#!/usr/bin/env python3
"""Compare one benchmark between two google-benchmark JSON files.

Used by CI to guard the telemetry hooks: the HNOC_TELEMETRY=ON build
(hooks compiled in, nothing attached) must not regress the network
hot loop versus the OFF build by more than the threshold.

    check_perf_regression.py baseline.json candidate.json \
        --benchmark BM_NetworkStepBaseline --max-regression-pct 2.0

Cross-benchmark mode compares two different series (possibly from the
same file), which is how CI gates the active-set scheduler against the
always-step escape hatch:

    # saturation: active-set must not regress past the threshold
    check_perf_regression.py on.json on.json \
        --benchmark 'stepLoad/mesh_sat_always' \
        --candidate-benchmark 'stepLoad/mesh_sat_active' \
        --max-regression-pct 2.0

    # low load: active-set must be at least 2x faster
    check_perf_regression.py on.json on.json \
        --benchmark 'stepLoad/mesh_low_always' \
        --candidate-benchmark 'stepLoad/mesh_low_active' \
        --min-speedup 2.0

Counter mode gates a user counter instead of real_time, which is how
CI checks the adaptive simulation controller against the fixed-window
reference (counters are deterministic, so these gates are noise-free):

    # adaptive must simulate >= 40% fewer cycles
    check_perf_regression.py on.json on.json \
        --benchmark 'adaptiveSweep/fig07_ur_reference' \
        --candidate-benchmark 'adaptiveSweep/fig07_ur_adaptive' \
        --counter simulated_cycles --min-reduction-pct 40.0

    # ...while pre-saturation latency agrees within 1%
    ... --counter presat_latency_ns --max-delta-pct 1.0

    # ...and both classify the same points as saturated
    ... --counter saturated_points --require-equal

    # scaling gate: per-tile cost at 16x16 must stay within 1.5x of 8x8
    check_perf_regression.py scaling.json scaling.json \
        --benchmark 'scaling/mesh_8' \
        --candidate-benchmark 'scaling/mesh_16' \
        --counter ns_per_cycle_per_tile --max-increase-pct 50.0

Counter mode also supports an absolute ceiling, which is how CI caps
the profiled scan-overhead share (a percentage counter has a natural
absolute meaning, so no baseline series is needed — only the candidate
is read):

    # active-set scan + loop overhead must stay under 15% of step time
    check_perf_regression.py on.json on.json \
        --benchmark 'profiledStepLoad/mesh_mid' \
        --counter pct_scan_overhead --max-value 15.0

Either input may also be an `hnoc-perf-trajectory-v1` snapshot (the
distilled file make_perf_trajectory.py writes), so a committed
BENCH_trajectory.json can serve as the recorded baseline.

Exit status: 0 within threshold, 1 regression, 2 usage/data error.
Run with --self-test (no other arguments) to exercise the parsing and
comparison logic without pytest; CTest invokes this.
"""

import argparse
import json
import os
import sys
import tempfile


class DataError(Exception):
    """A benchmark file is missing, malformed, or lacks the series."""


def best_time(path, name):
    """Smallest real_time of `name` in a --benchmark_out JSON file.

    The minimum across repetitions is the standard low-noise estimate
    for a CPU-bound loop: noise only ever adds time.

    Also accepts an `hnoc-perf-trajectory-v1` snapshot, whose
    benchmarks map already records the per-series minimum.
    """
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as e:
        raise DataError(
            f"cannot read {path}: {e} "
            f"(did the benchmark step run and write --benchmark_out?)"
        )
    except ValueError as e:
        raise DataError(
            f"{path} is not valid JSON: {e} "
            f"(truncated benchmark run? re-run with --benchmark_out)"
        )
    if (
        isinstance(doc, dict)
        and doc.get("schema") == "hnoc-perf-trajectory-v1"
    ):
        series = doc.get("benchmarks")
        if not isinstance(series, dict):
            raise DataError(
                f"{path}: trajectory snapshot has no 'benchmarks' map"
            )
        entry = series.get(name)
        if not isinstance(entry, dict) or not isinstance(
            entry.get("min_ns"), (int, float)
        ):
            known = ", ".join(sorted(series)) or "(none)"
            raise DataError(
                f"no '{name}' series in trajectory {path}; file "
                f"contains: {known}"
            )
        return entry["min_ns"]
    if not isinstance(doc, dict) or not isinstance(
        doc.get("benchmarks"), list
    ):
        raise DataError(
            f"{path}: expected a google-benchmark JSON object with a "
            f"'benchmarks' array (got {type(doc).__name__})"
        )
    times = []
    for b in doc["benchmarks"]:
        if not isinstance(b, dict):
            continue
        if b.get("run_name", b.get("name")) != name:
            continue
        if b.get("run_type", "iteration") == "aggregate":
            continue
        t = b.get("real_time")
        if not isinstance(t, (int, float)):
            raise DataError(
                f"{path}: benchmark '{name}' entry has no numeric "
                f"real_time field"
            )
        times.append(t)
    if not times:
        known = sorted(
            {
                b.get("run_name", b.get("name", "?"))
                for b in doc["benchmarks"]
                if isinstance(b, dict)
            }
        )
        raise DataError(
            f"no '{name}' runs in {path}; file contains: "
            f"{', '.join(known) if known else '(no benchmarks at all)'}"
        )
    return min(times)


def best_counter(path, name, counter):
    """Value of a user counter for series `name` in a benchmark file.

    Counters in this repo are pure functions of simulated data, so
    every repetition carries the same value; the first non-aggregate
    entry is taken. Also accepts an `hnoc-perf-trajectory-v1`
    snapshot, reading the per-series 'counters' map.
    """
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as e:
        raise DataError(f"cannot read {path}: {e}")
    except ValueError as e:
        raise DataError(f"{path} is not valid JSON: {e}")
    if (
        isinstance(doc, dict)
        and doc.get("schema") == "hnoc-perf-trajectory-v1"
    ):
        entry = doc.get("benchmarks", {}).get(name)
        if not isinstance(entry, dict):
            raise DataError(f"no '{name}' series in trajectory {path}")
        v = entry.get("counters", {}).get(counter)
        if not isinstance(v, (int, float)):
            raise DataError(
                f"trajectory {path}: series '{name}' has no counter "
                f"'{counter}'"
            )
        return v
    if not isinstance(doc, dict) or not isinstance(
        doc.get("benchmarks"), list
    ):
        raise DataError(
            f"{path}: expected a google-benchmark JSON object with a "
            f"'benchmarks' array (got {type(doc).__name__})"
        )
    for b in doc["benchmarks"]:
        if not isinstance(b, dict):
            continue
        if b.get("run_name", b.get("name")) != name:
            continue
        if b.get("run_type", "iteration") == "aggregate":
            continue
        v = b.get(counter)
        if not isinstance(v, (int, float)):
            raise DataError(
                f"{path}: benchmark '{name}' has no numeric counter "
                f"'{counter}'"
            )
        return v
    raise DataError(f"no '{name}' runs in {path}")


def compare(
    baseline,
    candidate,
    benchmark,
    max_regression_pct,
    out=sys.stdout,
    candidate_benchmark=None,
    min_speedup=None,
    counter=None,
    min_reduction_pct=None,
    max_delta_pct=None,
    max_increase_pct=None,
    require_equal=False,
    max_value=None,
):
    """Core comparison; returns the process exit code.

    With `candidate_benchmark`, the candidate file is read at that
    series instead of `benchmark` (cross-benchmark A/B). With
    `min_speedup`, the gate is baseline/candidate >= min_speedup
    instead of the regression-percentage bound. With `counter`, the
    named user counter is compared instead of real_time, under one of
    four gates: `min_reduction_pct` (candidate must be at least that
    much smaller), `max_delta_pct` (absolute relative delta bound),
    `max_increase_pct` (one-sided growth bound: the candidate may
    shrink freely but must not exceed baseline by more than this
    percent — the scaling-curve gate), `require_equal` (exact match),
    or `max_value` (absolute ceiling on the candidate's counter alone;
    the baseline file is not read).
    """
    cand_name = candidate_benchmark or benchmark
    label = (
        benchmark
        if cand_name == benchmark
        else f"{benchmark} -> {cand_name}"
    )
    if counter is not None and max_value is not None:
        cand = best_counter(candidate, cand_name, counter)
        print(
            f"{cand_name} [{counter}]: value {cand:g} "
            f"(ceiling {max_value:g})",
            file=out,
        )
        if cand > max_value:
            print(
                f"FAIL: counter '{counter}' over absolute ceiling",
                file=sys.stderr,
            )
            return 1
        print("OK", file=out)
        return 0
    if counter is not None:
        base = best_counter(baseline, benchmark, counter)
        cand = best_counter(candidate, cand_name, counter)
        if require_equal:
            print(
                f"{label} [{counter}]: baseline {base:g}, candidate "
                f"{cand:g} (required equal)",
                file=out,
            )
            if base != cand:
                print(
                    f"FAIL: counter '{counter}' differs", file=sys.stderr
                )
                return 1
            print("OK", file=out)
            return 0
        if base == 0:
            raise DataError(
                f"counter '{counter}' baseline is 0; relative gates "
                f"are undefined"
            )
        if min_reduction_pct is not None:
            reduction = (base - cand) / base * 100.0
            print(
                f"{label} [{counter}]: baseline {base:g}, candidate "
                f"{cand:g}, reduction {reduction:.2f}% "
                f"(required >= {min_reduction_pct:.2f}%)",
                file=out,
            )
            if reduction < min_reduction_pct:
                print(
                    "FAIL: counter reduction below required minimum",
                    file=sys.stderr,
                )
                return 1
            print("OK", file=out)
            return 0
        if max_delta_pct is not None:
            delta = abs(cand - base) / abs(base) * 100.0
            print(
                f"{label} [{counter}]: baseline {base:g}, candidate "
                f"{cand:g}, |delta| {delta:.3f}% "
                f"(limit {max_delta_pct:.3f}%)",
                file=out,
            )
            if delta > max_delta_pct:
                print(
                    "FAIL: counter delta over threshold", file=sys.stderr
                )
                return 1
            print("OK", file=out)
            return 0
        if max_increase_pct is not None:
            increase = (cand - base) / abs(base) * 100.0
            print(
                f"{label} [{counter}]: baseline {base:g}, candidate "
                f"{cand:g}, increase {increase:+.2f}% "
                f"(limit +{max_increase_pct:.2f}%)",
                file=out,
            )
            if increase > max_increase_pct:
                print(
                    "FAIL: counter growth over threshold",
                    file=sys.stderr,
                )
                return 1
            print("OK", file=out)
            return 0
        raise DataError(
            "--counter needs one of --min-reduction-pct, "
            "--max-delta-pct, --max-increase-pct, --max-value, or "
            "--require-equal"
        )
    base = best_time(baseline, benchmark)
    cand = best_time(candidate, cand_name)
    if min_speedup is not None:
        speedup = base / cand
        print(
            f"{label}: baseline {base:.1f} ns, candidate {cand:.1f} ns, "
            f"speedup {speedup:.2f}x (required >= {min_speedup:.2f}x)",
            file=out,
        )
        if speedup < min_speedup:
            print("FAIL: speedup below required minimum", file=sys.stderr)
            return 1
        print("OK", file=out)
        return 0
    delta_pct = (cand - base) / base * 100.0
    print(
        f"{label}: baseline {base:.1f} ns, "
        f"candidate {cand:.1f} ns, delta {delta_pct:+.2f}% "
        f"(limit +{max_regression_pct:.2f}%)",
        file=out,
    )
    if delta_pct > max_regression_pct:
        print("FAIL: hot-path regression over threshold", file=sys.stderr)
        return 1
    print("OK", file=out)
    return 0


# --------------------------------------------------------- self-test --


def self_test():
    """Pytest-free checks of the parsing and comparison logic."""
    checks = []

    def check(name, got, want):
        checks.append((name, got, want))
        status = "ok" if got == want else "FAIL"
        print(f"  {status}: {name} (got {got!r}, want {want!r})")

    def bench_file(tmpdir, fname, entries):
        path = os.path.join(tmpdir, fname)
        with open(path, "w") as f:
            json.dump({"benchmarks": entries}, f)
        return path

    def expect_data_error(name, fn, needle):
        try:
            fn()
        except DataError as e:
            check(name, needle in str(e), True)
        else:
            check(name, "no DataError raised", DataError)

    entry = lambda name, t, **kw: dict(
        {"name": name, "run_name": name, "real_time": t}, **kw
    )

    with tempfile.TemporaryDirectory() as tmp:
        devnull = open(os.devnull, "w")

        # Minimum across repetitions, aggregates ignored.
        path = bench_file(
            tmp,
            "a.json",
            [
                entry("BM_X", 120.0),
                entry("BM_X", 100.0),
                entry("BM_X", 999.0, run_type="aggregate"),
                entry("BM_Y", 5.0),
            ],
        )
        check("min over repetitions", best_time(path, "BM_X"), 100.0)

        # Within / over threshold.
        base = bench_file(tmp, "base.json", [entry("BM_X", 100.0)])
        ok = bench_file(tmp, "ok.json", [entry("BM_X", 101.0)])
        bad = bench_file(tmp, "bad.json", [entry("BM_X", 110.0)])
        fast = bench_file(tmp, "fast.json", [entry("BM_X", 90.0)])
        check(
            "within threshold passes",
            compare(base, ok, "BM_X", 2.0, out=devnull),
            0,
        )
        check(
            "regression fails",
            compare(base, bad, "BM_X", 2.0, out=devnull),
            1,
        )
        check(
            "improvement passes",
            compare(base, fast, "BM_X", 2.0, out=devnull),
            0,
        )

        # Cross-benchmark A/B within one file: candidate read at a
        # different series name.
        ab = bench_file(
            tmp,
            "ab.json",
            [entry("BM_Slow", 100.0), entry("BM_Fast", 40.0)],
        )
        check(
            "cross-benchmark improvement passes",
            compare(
                ab, ab, "BM_Slow", 2.0,
                out=devnull, candidate_benchmark="BM_Fast",
            ),
            0,
        )
        check(
            "cross-benchmark regression fails",
            compare(
                ab, ab, "BM_Fast", 2.0,
                out=devnull, candidate_benchmark="BM_Slow",
            ),
            1,
        )

        # Speedup gate: 100/40 = 2.5x.
        check(
            "speedup gate met",
            compare(
                ab, ab, "BM_Slow", 2.0,
                out=devnull, candidate_benchmark="BM_Fast",
                min_speedup=2.0,
            ),
            0,
        )
        check(
            "speedup gate missed",
            compare(
                ab, ab, "BM_Slow", 2.0,
                out=devnull, candidate_benchmark="BM_Fast",
                min_speedup=3.0,
            ),
            1,
        )

        # Counter gates: reduction, delta bound, exact match.
        ctr = bench_file(
            tmp,
            "ctr.json",
            [
                entry(
                    "sweep/ref",
                    5.0,
                    simulated_cycles=100000.0,
                    presat_latency_ns=20.0,
                    saturated_points=1.0,
                ),
                entry(
                    "sweep/ada",
                    2.0,
                    simulated_cycles=50000.0,
                    presat_latency_ns=20.1,
                    saturated_points=1.0,
                ),
            ],
        )
        check(
            "counter read from raw JSON",
            best_counter(ctr, "sweep/ref", "simulated_cycles"),
            100000.0,
        )
        check(
            "counter reduction gate met",
            compare(
                ctr, ctr, "sweep/ref", 2.0,
                out=devnull, candidate_benchmark="sweep/ada",
                counter="simulated_cycles", min_reduction_pct=40.0,
            ),
            0,
        )
        check(
            "counter reduction gate missed",
            compare(
                ctr, ctr, "sweep/ref", 2.0,
                out=devnull, candidate_benchmark="sweep/ada",
                counter="simulated_cycles", min_reduction_pct=60.0,
            ),
            1,
        )
        check(
            "counter delta within bound",
            compare(
                ctr, ctr, "sweep/ref", 2.0,
                out=devnull, candidate_benchmark="sweep/ada",
                counter="presat_latency_ns", max_delta_pct=1.0,
            ),
            0,
        )
        check(
            "counter delta over bound",
            compare(
                ctr, ctr, "sweep/ref", 2.0,
                out=devnull, candidate_benchmark="sweep/ada",
                counter="presat_latency_ns", max_delta_pct=0.1,
            ),
            1,
        )
        # One-sided growth gate (the scaling-curve bound): a shrink or
        # small growth passes, growth over the limit fails.
        scale = bench_file(
            tmp,
            "scale.json",
            [
                entry("scaling/mesh_8", 50.0, ns_per_cycle_per_tile=100.0),
                entry("scaling/mesh_16", 60.0, ns_per_cycle_per_tile=140.0),
                entry("scaling/mesh_32", 70.0, ns_per_cycle_per_tile=40.0),
            ],
        )
        check(
            "counter growth within bound",
            compare(
                scale, scale, "scaling/mesh_8", 2.0,
                out=devnull, candidate_benchmark="scaling/mesh_16",
                counter="ns_per_cycle_per_tile", max_increase_pct=50.0,
            ),
            0,
        )
        check(
            "counter growth over bound",
            compare(
                scale, scale, "scaling/mesh_8", 2.0,
                out=devnull, candidate_benchmark="scaling/mesh_16",
                counter="ns_per_cycle_per_tile", max_increase_pct=30.0,
            ),
            1,
        )
        check(
            "counter shrink passes one-sided gate",
            compare(
                scale, scale, "scaling/mesh_8", 2.0,
                out=devnull, candidate_benchmark="scaling/mesh_32",
                counter="ns_per_cycle_per_tile", max_increase_pct=0.0,
            ),
            0,
        )
        # Absolute ceiling: reads only the candidate series, so a
        # percentage counter gates without any baseline file.
        check(
            "counter within absolute ceiling",
            compare(
                ctr, ctr, "sweep/ref", 2.0,
                out=devnull, counter="presat_latency_ns",
                max_value=25.0,
            ),
            0,
        )
        check(
            "counter over absolute ceiling",
            compare(
                ctr, ctr, "sweep/ref", 2.0,
                out=devnull, counter="presat_latency_ns",
                max_value=15.0,
            ),
            1,
        )
        check(
            "absolute ceiling reads candidate series",
            compare(
                ctr, ctr, "sweep/ref", 2.0,
                out=devnull, candidate_benchmark="sweep/ada",
                counter="simulated_cycles", max_value=60000.0,
            ),
            0,
        )
        check(
            "counter equality met",
            compare(
                ctr, ctr, "sweep/ref", 2.0,
                out=devnull, candidate_benchmark="sweep/ada",
                counter="saturated_points", require_equal=True,
            ),
            0,
        )
        check(
            "counter inequality fails",
            compare(
                ctr, ctr, "sweep/ref", 2.0,
                out=devnull, candidate_benchmark="sweep/ada",
                counter="simulated_cycles", require_equal=True,
            ),
            1,
        )
        expect_data_error(
            "missing counter explained",
            lambda: best_counter(ctr, "sweep/ref", "nope"),
            "nope",
        )
        expect_data_error(
            "counter without a gate rejected",
            lambda: compare(
                ctr, ctr, "sweep/ref", 2.0,
                out=devnull, counter="simulated_cycles",
            ),
            "--min-reduction-pct",
        )

        # The telemetry-overhead job shape with blame hooks compiled
        # in: the OFF-vs-ON comparison still reads
        # BM_NetworkStepBaseline (hooks present, nothing attached) and
        # must ride the same <=2% gate, while the attached-collector
        # price is checked cross-benchmark inside the ON file under a
        # generous bound (attachment may cost, never silently explode).
        blame_off = bench_file(
            tmp,
            "blame_off.json",
            [entry("BM_NetworkStepBaseline", 100.0)],
        )
        blame_on = bench_file(
            tmp,
            "blame_on.json",
            [
                entry("BM_NetworkStepBaseline", 101.0),
                entry("BM_NetworkStepBlame", 125.0),
            ],
        )
        check(
            "blame hooks ride the ON-vs-OFF gate",
            compare(
                blame_off, blame_on, "BM_NetworkStepBaseline", 2.0,
                out=devnull,
            ),
            0,
        )
        check(
            "attached blame collector within price bound",
            compare(
                blame_on, blame_on, "BM_NetworkStepBaseline", 30.0,
                out=devnull, candidate_benchmark="BM_NetworkStepBlame",
            ),
            0,
        )
        check(
            "attached blame collector over price bound",
            compare(
                blame_on, blame_on, "BM_NetworkStepBaseline", 10.0,
                out=devnull, candidate_benchmark="BM_NetworkStepBlame",
            ),
            1,
        )

        # Trajectory-v1 snapshots as inputs (recorded baselines).
        traj = os.path.join(tmp, "traj.json")
        with open(traj, "w") as f:
            json.dump(
                {
                    "schema": "hnoc-perf-trajectory-v1",
                    "benchmarks": {
                        "BM_X": {
                            "median_ns": 105.0,
                            "min_ns": 100.0,
                            "repetitions": 7,
                            "counters": {"simulated_cycles": 100000.0},
                        }
                    },
                },
                f,
            )
        check("trajectory min_ns read", best_time(traj, "BM_X"), 100.0)
        check(
            "trajectory counter read",
            best_counter(traj, "BM_X", "simulated_cycles"),
            100000.0,
        )
        expect_data_error(
            "trajectory missing counter explained",
            lambda: best_counter(traj, "BM_X", "nope"),
            "nope",
        )
        check(
            "trajectory baseline vs raw candidate",
            compare(traj, ok, "BM_X", 2.0, out=devnull),
            0,
        )
        expect_data_error(
            "trajectory unknown series lists known ones",
            lambda: best_time(traj, "BM_Missing"),
            "BM_X",
        )

        # Error paths: message must say what is wrong and where.
        missing = os.path.join(tmp, "missing.json")
        expect_data_error(
            "missing file named",
            lambda: best_time(missing, "BM_X"),
            "missing.json",
        )
        trunc = os.path.join(tmp, "trunc.json")
        with open(trunc, "w") as f:
            f.write('{"benchmarks": [')
        expect_data_error(
            "malformed JSON explained",
            lambda: best_time(trunc, "BM_X"),
            "not valid JSON",
        )
        not_bench = os.path.join(tmp, "notbench.json")
        with open(not_bench, "w") as f:
            json.dump([1, 2, 3], f)
        expect_data_error(
            "wrong shape explained",
            lambda: best_time(not_bench, "BM_X"),
            "'benchmarks' array",
        )
        expect_data_error(
            "unknown series lists known ones",
            lambda: best_time(base, "BM_Missing"),
            "BM_X",
        )
        no_time = bench_file(
            tmp, "notime.json", [{"name": "BM_X", "run_name": "BM_X"}]
        )
        expect_data_error(
            "missing real_time explained",
            lambda: best_time(no_time, "BM_X"),
            "real_time",
        )
        devnull.close()

    failed = [c for c in checks if c[1] != c[2]]
    print(f"self-test: {len(checks) - len(failed)}/{len(checks)} passed")
    return 1 if failed else 0


def main():
    if "--self-test" in sys.argv[1:]:
        return self_test()
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", help="benchmark JSON of the reference build")
    ap.add_argument("candidate", help="benchmark JSON of the build under test")
    ap.add_argument("--benchmark", default="BM_NetworkStepBaseline")
    ap.add_argument(
        "--candidate-benchmark",
        help="series name to read from the candidate file when it "
        "differs from --benchmark (cross-benchmark A/B)",
    )
    ap.add_argument("--max-regression-pct", type=float, default=2.0)
    ap.add_argument(
        "--min-speedup",
        type=float,
        help="require baseline/candidate >= this factor instead of the "
        "regression bound (e.g. 2.0 for the active-set low-load gate)",
    )
    ap.add_argument(
        "--counter",
        help="compare this user counter instead of real_time; needs "
        "one of --min-reduction-pct / --max-delta-pct / --require-equal",
    )
    ap.add_argument(
        "--min-reduction-pct",
        type=float,
        help="with --counter: candidate must be at least this percent "
        "smaller than baseline (adaptive cycle-savings gate)",
    )
    ap.add_argument(
        "--max-delta-pct",
        type=float,
        help="with --counter: |candidate-baseline|/baseline must stay "
        "within this percent (latency-agreement gate)",
    )
    ap.add_argument(
        "--max-increase-pct",
        type=float,
        help="with --counter: candidate may shrink freely but must not "
        "exceed baseline by more than this percent (one-sided "
        "scaling-curve gate, e.g. 50 for the 16x16 <= 1.5x 8x8 "
        "ns/cycle/tile bound)",
    )
    ap.add_argument(
        "--max-value",
        type=float,
        help="with --counter: absolute ceiling on the candidate's "
        "counter value; no baseline series is read (scan-overhead "
        "share gate, e.g. 15 for pct_scan_overhead <= 15%%)",
    )
    ap.add_argument(
        "--require-equal",
        action="store_true",
        help="with --counter: values must match exactly "
        "(saturation-classification gate)",
    )
    args = ap.parse_args()

    try:
        return compare(
            args.baseline,
            args.candidate,
            args.benchmark,
            args.max_regression_pct,
            candidate_benchmark=args.candidate_benchmark,
            min_speedup=args.min_speedup,
            counter=args.counter,
            min_reduction_pct=args.min_reduction_pct,
            max_delta_pct=args.max_delta_pct,
            max_increase_pct=args.max_increase_pct,
            require_equal=args.require_equal,
            max_value=args.max_value,
        )
    except DataError as e:
        print(f"error: {e}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
