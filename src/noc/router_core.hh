/**
 * @file
 * Data-oriented (structure-of-arrays) router state.
 *
 * The per-cycle router hot path used to traverse per-port/per-VC
 * objects; at mid load that traversal — not idle-component iteration —
 * is the dominant cost (VA scanned every slot, SA scanned every slot
 * once per output port). RouterCore packs the per-input-VC pipeline
 * state into parallel arrays indexed by slot = port * vcs + vc, and
 * keeps the allocator request sets as bitmasks with one bit per slot:
 *
 *  - rcMask:    head flit buffered, route not yet computed;
 *  - vaReqMask: route computed, no downstream VC allocated yet;
 *  - saReqMask: per output port — slots whose packet holds a VC on
 *               that port (the SA candidate set).
 *
 * VA/SA then iterate only the set bits, in the same rotating-priority
 * order as the legacy per-candidate loops (bitops::forEachSetCyclic),
 * so grant sequences — and therefore simulation results — are
 * bit-identical; see DESIGN.md "SoA router core".
 *
 * The arrays and masks are sized exactly once (construction /
 * connectOutput wiring), so the steady state performs zero heap
 * allocations (test_perf_zero_alloc).
 */

#ifndef HNOC_NOC_ROUTER_CORE_HH
#define HNOC_NOC_ROUTER_CORE_HH

#include <cstdint>
#include <vector>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "common/ring_buffer.hh"
#include "common/types.hh"
#include "noc/flit.hh"

namespace hnoc
{

class Channel;

/** SoA input-VC state plus per-output-port allocator state. */
struct RouterCore
{
    /** Output-port allocator state. Downstream-VC credit counts live
     *  in a per-port array (indexed by downstream VC); the allocated
     *  set is a single word, bounding downstream VC counts at 64. */
    struct Output
    {
        Channel *chan = nullptr;
        int lanes = 1;
        int downVcs = 0;
        std::uint64_t allocMask = 0; ///< allocated downstream VCs
        std::vector<int> credits;    ///< per downstream VC
        /** Grant-driven part of the SA rotating pointer; the
         *  per-cycle part is implicit (ptr = (rrOffset + now) %
         *  total), so skipped idle cycles cannot desynchronise it. */
        unsigned rrOffset = 0;
    };

    int ports = 0;
    int vcs = 0;
    int total = 0; ///< ports * vcs input-VC slots
    int words = 0; ///< 64-bit words per slot mask

    /** @name Per-slot parallel arrays (slot = port * vcs + vc) */
    ///@{
    std::vector<RingBuffer<Flit>> fifo; ///< fixed capacity = depth
    std::vector<PortId> outPort;
    std::vector<VcId> outVc;   ///< INVALID until VA succeeds
    std::vector<VcId> vcLo;    ///< admissible downstream VC range
    std::vector<VcId> vcHi;
    std::vector<Cycle> headSince;  ///< when the head became ready
    std::vector<Cycle> headArrive; ///< head flit's buffer-write cycle
                                   ///< (CYCLE_NEVER while empty)
    std::vector<Packet *> pkt;
    ///@}

    /** @name Request bitmasks, one bit per slot */
    ///@{
    std::vector<std::uint64_t> activeMask; ///< slot owns a route
    std::vector<std::uint64_t> rcMask;     ///< head awaiting RC
    std::vector<std::uint64_t> vaReqMask;  ///< awaiting a VC grant
    /** SA candidates per output port, flattened [port * words]. */
    std::vector<std::uint64_t> saReqMask;
    ///@}

    std::vector<Channel *> inChan; ///< upstream channel per input port
    std::vector<Output> outputs;

    void
    init(int num_ports, int num_vcs, int buffer_depth)
    {
        ports = num_ports;
        vcs = num_vcs;
        total = num_ports * num_vcs;
        words = bitops::maskWords(total);

        auto n = static_cast<std::size_t>(total);
        fifo.resize(n);
        for (auto &f : fifo)
            f.reset(static_cast<std::size_t>(buffer_depth));
        outPort.assign(n, INVALID_PORT);
        outVc.assign(n, INVALID_VC);
        vcLo.assign(n, 0);
        vcHi.assign(n, 0);
        headSince.assign(n, 0);
        headArrive.assign(n, CYCLE_NEVER);
        pkt.assign(n, nullptr);

        auto w = static_cast<std::size_t>(words);
        activeMask.assign(w, 0);
        rcMask.assign(w, 0);
        vaReqMask.assign(w, 0);
        saReqMask.assign(w * static_cast<std::size_t>(ports), 0);

        inChan.assign(static_cast<std::size_t>(ports), nullptr);
        outputs.assign(static_cast<std::size_t>(ports), Output{});
    }

    int
    slot(PortId p, VcId v) const
    {
        return p * vcs + v;
    }

    bool
    active(int s) const
    {
        return bitops::maskTest(activeMask.data(), s);
    }

    /** SA candidate mask of output port @p p. */
    std::uint64_t *
    saReq(PortId p)
    {
        return saReqMask.data() +
               static_cast<std::size_t>(p) *
                   static_cast<std::size_t>(words);
    }

    const std::uint64_t *
    saReq(PortId p) const
    {
        return saReqMask.data() +
               static_cast<std::size_t>(p) *
                   static_cast<std::size_t>(words);
    }

    /** Wire output port @p p. @p down_vcs is capped at 64 by the
     *  single-word allocated/credit masks. */
    void
    connectOutput(PortId p, Channel *chan, int chan_lanes, int down_vcs,
                  int down_depth)
    {
        if (down_vcs > bitops::kWordBits)
            fatal("router core: %d downstream VCs exceed the 64-wide "
                  "allocator mask", down_vcs);
        Output &op = outputs[static_cast<std::size_t>(p)];
        op.chan = chan;
        op.lanes = chan_lanes;
        op.downVcs = down_vcs;
        op.allocMask = 0;
        op.credits.assign(static_cast<std::size_t>(down_vcs), down_depth);
    }

    /**
     * Steady-state memory footprint of the SoA arrays, from container
     * capacities: per-slot FIFO storage, the parallel slot arrays, the
     * request bitmasks, and per-output credit vectors. Everything here
     * is sized once in init()/connectOutput(), so the value is
     * constant after wiring — the sizing contract test_footprint pins
     * it against the layout formulas.
     */
    std::uint64_t
    footprintBytes() const
    {
        std::uint64_t b = 0;
        b += fifo.capacity() * sizeof(RingBuffer<Flit>);
        for (const auto &f : fifo)
            b += static_cast<std::uint64_t>(f.capacity()) * sizeof(Flit);
        b += outPort.capacity() * sizeof(PortId);
        b += outVc.capacity() * sizeof(VcId);
        b += vcLo.capacity() * sizeof(VcId);
        b += vcHi.capacity() * sizeof(VcId);
        b += headSince.capacity() * sizeof(Cycle);
        b += headArrive.capacity() * sizeof(Cycle);
        b += pkt.capacity() * sizeof(Packet *);
        b += (activeMask.capacity() + rcMask.capacity() +
              vaReqMask.capacity() + saReqMask.capacity()) *
             sizeof(std::uint64_t);
        b += inChan.capacity() * sizeof(Channel *);
        b += outputs.capacity() * sizeof(Output);
        for (const Output &op : outputs)
            b += op.credits.capacity() * sizeof(int);
        return b;
    }

    /** Mirror the head-of-FIFO arrival cycle after a pop. */
    void
    refreshHead(int s)
    {
        auto i = static_cast<std::size_t>(s);
        headArrive[i] =
            fifo[i].empty() ? CYCLE_NEVER : fifo[i].front().arrivedAt;
    }
};

} // namespace hnoc

#endif // HNOC_NOC_ROUTER_CORE_HH
