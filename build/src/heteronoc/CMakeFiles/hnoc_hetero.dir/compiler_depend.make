# Empty compiler generated dependencies file for hnoc_hetero.
# This may be replaced when dependencies are built.
