#include "noc/router.hh"

#include <algorithm>

#include "common/logging.hh"

namespace hnoc
{

Router::Router(RouterId id, int num_ports, int vcs, int buffer_depth,
               const RoutingAlgorithm &routing, int escape_threshold,
               bool intra_packet_pairing, SaPolicy sa_policy)
    : id_(id), bufferDepth_(buffer_depth), routing_(routing),
      escapeThreshold_(escape_threshold),
      intraPacketPairing_(intra_packet_pairing), saPolicy_(sa_policy)
{
    core_.init(num_ports, vcs, buffer_depth);
}

void
Router::connectInput(PortId p, Channel *chan)
{
    core_.inChan[static_cast<std::size_t>(p)] = chan;
}

void
Router::connectOutput(PortId p, Channel *chan, int down_vcs, int down_depth)
{
    core_.connectOutput(p, chan, chan->lanes(), down_vcs, down_depth);
}

void
Router::receiveFlit(PortId p, Flit flit, Cycle now)
{
    if (flit.vc < 0 || flit.vc >= core_.vcs)
        panic("router %d port %d: flit on invalid VC %d", id_, p, flit.vc);
    int s = core_.slot(p, flit.vc);
    auto si = static_cast<std::size_t>(s);
    RingBuffer<Flit> &fifo = core_.fifo[si];
    if (static_cast<int>(fifo.size()) >= bufferDepth_)
        panic("router %d port %d vc %d: buffer overflow (credit bug)",
              id_, p, flit.vc);
    if (fifo.empty()) {
        core_.headArrive[si] = now; // this flit becomes the head
        if (!core_.active(s)) // an idle VC just gained a head needing RC
            bitops::maskSet(core_.rcMask, s);
    }
    flit.arrivedAt = now;
    fifo.push_back(flit);
    ++flitCount_;
    slot_.markBusy();
    ++activity_.bufferWrites;
    if (kTelemetryEnabled && telemetry_)
        telemetry_->add(Ctr::BufferWrites, id_, p, flit.vc);
    if (kTelemetryEnabled && recorder_)
        recorder_->record(FrKind::FlitIn, now, id_, p, flit.vc,
                          flit.pkt ? flit.pkt->id : 0, flit.isHead());
    if (observer_)
        observer_->onFlitArrive(id_, p, flit, now);
}

void
Router::receiveCredit(PortId p, VcId vc, Cycle now)
{
    RouterCore::Output &op = core_.outputs[static_cast<std::size_t>(p)];
    int &credits = op.credits[static_cast<std::size_t>(vc)];
    if (credits >= bufferDepth_ * 4) // generous sanity bound
        panic("router %d port %d vc %d: credit overflow", id_, p, vc);
    ++credits;
    if (kTelemetryEnabled && recorder_)
        recorder_->record(FrKind::CreditIn, now, id_, p, vc);
}

void
Router::step(Cycle now)
{
    // Phase timers are report-only wall-clock accumulation: the
    // pipeline functions never read them, so attaching a profiler
    // cannot perturb simulation results. kTelemetryEnabled folds the
    // pointer to nullptr in the OFF build. While attached, the three
    // phase timings chain on shared clock reads (four reads, no
    // inter-scope gaps), so no instrumentation slop between phases
    // leaks into the unattributed scan-overhead residual.
    Profiler *prof = kTelemetryEnabled ? profiler_ : nullptr;
    if (prof) {
        auto ns = [](Profiler::clock::time_point a,
                     Profiler::clock::time_point b) {
            return static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    b - a)
                    .count());
        };
        auto t0 = Profiler::clock::now();
        routeCompute(now);
        auto t1 = Profiler::clock::now();
        vcAllocate(now);
        auto t2 = Profiler::clock::now();
        switchAllocate(now);
        auto t3 = Profiler::clock::now();
        prof->add(ProfPhase::RouteCompute, ns(t0, t1));
        prof->add(ProfPhase::VcAllocate, ns(t1, t2));
        prof->add(ProfPhase::SwitchAllocate, ns(t2, t3));
    } else {
        routeCompute(now);
        vcAllocate(now);
        switchAllocate(now);
    }

    // After SA has settled the cycle, every head still pending is by
    // definition stalled for exactly one cycle; classify and charge
    // it. Detached cost: one constant-foldable branch.
    if (kTelemetryEnabled && blame_)
        blamePass(now);

    // Occupancy sample for the Fig 1/2 heat maps. A zero sample is a
    // no-op on both accumulators, so skipping flitless cycles under
    // active-set scheduling loses nothing.
    int occ = flitCount_;
    occupancySum_ += occ;
    if (kTelemetryEnabled && telemetry_)
        telemetry_->occupancySample(id_, occ);
    if (flitCount_ == 0)
        slot_.markIdle(); // drained every buffered flit this cycle
}

void
Router::routeCompute(Cycle now)
{
    // rcMask holds exactly the slots whose head flit still needs a
    // route (a slot cannot drain while inactive, so a set bit implies
    // a non-empty FIFO). Ascending bit order matches the legacy
    // port-major/VC-minor nested loops.
    if (!bitops::maskAny(core_.rcMask, core_.words))
        return;
    bitops::forEachSetCyclic(
        core_.rcMask, core_.words, core_.total, 0, [&](int s) {
            auto si = static_cast<std::size_t>(s);
            if (core_.headArrive[si] >= now)
                return true; // written this cycle; eligible next cycle
            const Flit &head = core_.fifo[si].front();
            if (!head.isHead())
                panic("router %d: non-head flit at idle VC (pkt %llu)",
                      id_, static_cast<unsigned long long>(
                               head.pkt ? head.pkt->id : 0));
            core_.pkt[si] = head.pkt;
            // Route-pending blame, charged as a lump: the head has
            // been the front flit since headArrive (refreshHead keeps
            // that exact, including behind a draining predecessor),
            // and the earliest possible RC cycle is headArrive + 1.
            if (kTelemetryEnabled && blame_ && head.pkt->blame) {
                Cycle waited = now - core_.headArrive[si] - 1;
                if (waited > 0) {
                    head.pkt->blame->charge(BlameCause::RoutePending,
                                            waited);
                    blame_->charge(id_, INVALID_PORT,
                                   BlameCause::RoutePending, waited);
                }
            }
            bitops::maskSet(core_.activeMask, s);
            bitops::maskClear(core_.rcMask, s);
            bitops::maskSet(core_.vaReqMask, s);
            PortId out = routing_.outputPort(id_, *core_.pkt[si]);
            core_.outPort[si] = out;
            core_.outVc[si] = INVALID_VC;
            const RouterCore::Output &op =
                core_.outputs[static_cast<std::size_t>(out)];
            routing_.vcBounds(id_, out, *core_.pkt[si], op.downVcs,
                              core_.vcLo[si], core_.vcHi[si]);
            core_.headSince[si] = now;
            ++core_.pkt[si]->hops;
            return true;
        });
}

void
Router::maybeEscape(int s, Cycle now)
{
    auto si = static_cast<std::size_t>(s);
    Packet *pkt = core_.pkt[si];
    if (!routing_.hasEscape(*pkt))
        return;
    if (now - core_.headSince[si] <= static_cast<Cycle>(escapeThreshold_))
        return;
    // Fall back to the X-Y escape layer for the rest of the journey.
    // The slot holds no output VC yet (escape happens before the VA
    // grant), so it sits in no SA candidate mask and the output port
    // can change freely.
    pkt->escaped = true;
    PortId out = routing_.outputPort(id_, *pkt);
    core_.outPort[si] = out;
    const RouterCore::Output &op =
        core_.outputs[static_cast<std::size_t>(out)];
    routing_.vcBounds(id_, out, *pkt, op.downVcs, core_.vcLo[si],
                      core_.vcHi[si]);
    core_.headSince[si] = now;
}

void
Router::vcAllocate(Cycle now)
{
    // Separable, output-side allocator: walk the requesting input VCs
    // (vaReqMask = active without an output VC) round-robin and hand
    // each the first free admissible downstream VC — a single
    // ctz over ~allocMask masked to [vcLo, vcHi]. The rotating pointer
    // is a pure function of the cycle number (it used to advance by
    // one every stepped cycle from zero), so skipping idle cycles
    // leaves the priority sequence unchanged; iterating only the set
    // bits preserves the visit order of the legacy all-slot scan
    // because non-requesters were skipped there anyway.
    if (!bitops::maskAny(core_.vaReqMask, core_.words))
        return;
    int total = core_.total;
    int ptr = static_cast<int>(now % static_cast<Cycle>(total));
    bitops::forEachSetCyclic(
        core_.vaReqMask, core_.words, total, ptr, [&](int s) {
            auto si = static_cast<std::size_t>(s);
            if (core_.fifo[si].empty() || core_.headArrive[si] >= now)
                return true;
            maybeEscape(s, now);
            RouterCore::Output &op =
                core_.outputs[static_cast<std::size_t>(core_.outPort[si])];
            int v = bitops::firstClearInRange64(
                op.allocMask, core_.vcLo[si], core_.vcHi[si]);
            if (v >= 0) {
                op.allocMask |= std::uint64_t{1} << v;
                core_.outVc[si] = v;
                core_.headSince[si] = now;
                ++activity_.arbOps;
                bitops::maskClear(core_.vaReqMask, s);
                bitops::maskSet(core_.saReq(core_.outPort[si]), s);
            }
            if (kTelemetryEnabled && telemetry_ && v < 0)
                telemetry_->add(Ctr::VaConflicts, id_, s / core_.vcs,
                                s % core_.vcs);
            if (kTelemetryEnabled && recorder_)
                recorder_->record(v < 0 ? FrKind::VaDeny
                                        : FrKind::VaGrant,
                                  now, id_, s / core_.vcs,
                                  s % core_.vcs,
                                  core_.pkt[si] ? core_.pkt[si]->id : 0);
            return true;
        });
}

void
Router::switchAllocate(Cycle now)
{
    // Per-input-port grant bookkeeping: at most two reads per input
    // port per cycle (the DSET split of §3.2), and when two, both must
    // feed the same output port (one v:1 arbiter per input, Fig 6).
    // The scratch lives in the core's packed hot buffer, so the
    // per-cycle reset touches no scattered heap lines and the steady
    // state allocates nothing.
    for (PortId p = 0; p < core_.ports; ++p) {
        core_.saGrants[p] = 0;
        core_.saGrantOut[p] = INVALID_PORT;
    }
    for (PortId o = 0; o < core_.ports; ++o)
        switchAllocatePort(o, now);
}

void
Router::switchAllocatePort(PortId o, Cycle now)
{
    RouterCore::Output &op = core_.outputs[static_cast<std::size_t>(o)];
    if (!op.chan)
        return;
    // The candidate set (active slots holding a VC on this output) is
    // maintained incrementally by VA grants and tail departures; an
    // empty mask means the legacy all-slot scan would have granted
    // nothing and left rrOffset unchanged, so the port is skipped
    // outright.
    std::uint64_t *req = core_.saReq(o);
    if (!bitops::maskAny(req, core_.words))
        return;

    int total = core_.total;
    int capacity = op.lanes > 1 ? 2 : 1;
    int granted = 0;

    // Rotating priority: the legacy pointer advanced by
    // (granted + 1) per stepped cycle; splitting it into the
    // implicit cycle count plus a grant-only offset makes it
    // insensitive to skipped idle cycles (granted is zero on any
    // cycle the router could have been skipped).
    int ptr = static_cast<int>((static_cast<Cycle>(op.rrOffset) + now) %
                               static_cast<Cycle>(total));

    // Grant: pop the flit and push it into the output channel.
    // Returns true when the packet finished at this hop (tail sent).
    auto send_one = [&](int s, std::size_t si, PortId in_port,
                        int &pg) -> bool {
        RingBuffer<Flit> &fifo = core_.fifo[si];
        VcId out_vc = core_.outVc[si];
        Flit flit = fifo.front();
        fifo.pop_front();
        core_.refreshHead(s);
        --flitCount_;
        --op.credits[static_cast<std::size_t>(out_vc)];
        flit.vc = out_vc;
        op.chan->sendFlit(flit, now);
        // Zero-load head-path accounting: this hop contributes one
        // switch cycle plus the channel delay, priced on the route
        // actually taken (detours included).
        if (kTelemetryEnabled && blame_ && flit.isHead() &&
            flit.pkt->blame)
            flit.pkt->blame->minHeadCycles +=
                1 + static_cast<std::uint64_t>(op.chan->flitDelay());
        if (observer_)
            observer_->onFlitDepart(id_, o, flit, now);

        ++pg;
        core_.saGrantOut[in_port] = o;
        ++granted;
        ++activity_.bufferReads;
        ++activity_.xbarTraversals;
        ++activity_.arbOps;
        if (kTelemetryEnabled && telemetry_) {
            telemetry_->add(Ctr::XbarGrants, id_, o);
            telemetry_->add(Ctr::BufferReads, id_, in_port);
        }
        if (kTelemetryEnabled && recorder_) {
            recorder_->record(FrKind::FlitOut, now, id_, o, flit.vc,
                              flit.pkt ? flit.pkt->id : 0,
                              flit.isHead());
            recorder_->record(FrKind::CreditOut, now, id_, in_port,
                              s % core_.vcs);
        }
        // Charge the active (flit) bits, not the full wire
        // width: an unpaired flit on a wide link toggles only
        // its own half.
        activity_.linkBitTraversals +=
            op.chan->widthBits() / op.chan->lanes();

        Channel *in_chan = core_.inChan[static_cast<std::size_t>(in_port)];
        if (in_chan)
            in_chan->sendCredit(static_cast<VcId>(s % core_.vcs), now);

        if (flit.isTail()) {
            op.allocMask &= ~(std::uint64_t{1} << out_vc);
            bitops::maskClear(core_.activeMask, s);
            bitops::maskClear(req, s);
            core_.outPort[si] = INVALID_PORT;
            core_.outVc[si] = INVALID_VC;
            core_.pkt[si] = nullptr;
            if (!fifo.empty()) // next packet's head awaits RC
                bitops::maskSet(core_.rcMask, s);
            return true; // packet finished at this hop
        }
        if (!fifo.empty())
            core_.headSince[si] = now;
        return false;
    };

    // Consider one candidate slot; returns false to stop the walk
    // once the port's grant capacity is reached.
    auto consider = [&](int s) -> bool {
        auto si = static_cast<std::size_t>(s);
        PortId in_port = s / core_.vcs;
        RingBuffer<Flit> &fifo = core_.fifo[si];
        if (fifo.empty() || core_.headArrive[si] >= now)
            return granted < capacity;
        if (op.credits[static_cast<std::size_t>(core_.outVc[si])] <= 0) {
            if (kTelemetryEnabled && telemetry_)
                telemetry_->add(Ctr::CreditStalls, id_, o);
            if (kTelemetryEnabled && recorder_)
                recorder_->record(FrKind::CreditStall, now, id_, o,
                                  core_.outVc[si],
                                  core_.pkt[si] ? core_.pkt[si]->id : 0);
            return granted < capacity;
        }
        int &pg = core_.saGrants[in_port];
        if (pg >= 2)
            return granted < capacity;
        if (pg == 1 && core_.saGrantOut[in_port] != o)
            return granted < capacity;

        bool finished = send_one(s, si, in_port, pg);

        // Intra-packet pairing on wide outputs (§3.2): send the
        // next flit of the same packet over the other 128 b half,
        // consuming a second credit in the same downstream VC.
        if (intraPacketPairing_ && !finished && granted < capacity &&
            pg < 2 &&
            op.credits[static_cast<std::size_t>(core_.outVc[si])] > 0 &&
            !fifo.empty() && core_.headArrive[si] < now &&
            fifo.front().pkt == core_.pkt[si]) {
            send_one(s, si, in_port, pg);
        }
        return granted < capacity;
    };

    // Candidate visiting order: rotating priority (cyclic bit walk),
    // or oldest waiting head first (SaPolicy::OldestFirst), which
    // materializes the candidates in rotated order and stable-sorts
    // them — the same sequence the legacy sort of all slots produced,
    // since filtering a stable sort to the candidate subsequence
    // preserves relative order.
    if (saPolicy_ == SaPolicy::OldestFirst) {
        scratchOrder_.clear();
        bitops::forEachSetCyclic(req, core_.words, total, ptr,
                                 [&](int s) {
                                     scratchOrder_.push_back(s);
                                     return true;
                                 });
        std::stable_sort(scratchOrder_.begin(), scratchOrder_.end(),
                         [&](int a, int b) {
                             return core_.headSince[static_cast<
                                        std::size_t>(a)] <
                                    core_.headSince[static_cast<
                                        std::size_t>(b)];
                         });
        for (int s : scratchOrder_) {
            if (granted >= capacity)
                break;
            // A tail grant earlier in the walk may have retired this
            // slot's VC; the mask is the live candidate set.
            if (!bitops::maskTest(req, s))
                continue;
            consider(s);
        }
    } else {
        bitops::forEachSetCyclic(req, core_.words, total, ptr, consider);
    }

    op.rrOffset = (op.rrOffset + static_cast<unsigned>(granted)) %
                  static_cast<unsigned>(total);
}

void
Router::blamePass(Cycle now)
{
    // Charge one stall cycle to every head that was eligible this
    // cycle yet did not depart. A slot is in exactly one of rcMask /
    // vaReqMask / one output's saReq mask, and rcMask waits are
    // covered by the route-pending lump charged at RC time, so each
    // waiting head is charged exactly once per stepped cycle — the
    // invariant behind the exact accounting identity. (A pending head
    // implies a buffered flit, so the router is busy and this pass
    // runs every cycle the head waits.)
    bitops::forEachSetCyclic(
        core_.vaReqMask, core_.words, core_.total, 0, [&](int s) {
            auto si = static_cast<std::size_t>(s);
            if (core_.fifo[si].empty() || core_.headArrive[si] >= now)
                return true;
            Packet *pkt = core_.pkt[si];
            if (!pkt || !pkt->blame)
                return true;
            BlameCause cause = core_.outPort[si] == ejectPort_
                                   ? BlameCause::EjectBackpressure
                                   : BlameCause::VaConflictLost;
            pkt->blame->charge(cause);
            blame_->charge(id_, core_.outPort[si], cause);
            return true;
        });

    for (PortId o = 0; o < core_.ports; ++o) {
        const RouterCore::Output &op =
            core_.outputs[static_cast<std::size_t>(o)];
        if (!op.chan)
            continue;
        std::uint64_t *req = core_.saReq(o);
        if (!bitops::maskAny(req, core_.words))
            continue;
        bitops::forEachSetCyclic(
            req, core_.words, core_.total, 0, [&](int s) {
                auto si = static_cast<std::size_t>(s);
                const RingBuffer<Flit> &fifo = core_.fifo[si];
                if (fifo.empty() || core_.headArrive[si] >= now)
                    return true;
                // Only the head's wait is charged here: once it has
                // departed, body/tail stalls are tail drag and fold
                // into the link-serialization residual at commit.
                const Flit &front = fifo.front();
                if (!front.isHead() || front.pkt != core_.pkt[si])
                    return true;
                Packet *pkt = core_.pkt[si];
                if (!pkt || !pkt->blame)
                    return true;
                BlameCause cause;
                if (o == ejectPort_)
                    cause = BlameCause::EjectBackpressure;
                else if (op.credits[static_cast<std::size_t>(
                             core_.outVc[si])] <= 0)
                    cause = BlameCause::CreditStarved;
                else
                    cause = BlameCause::SaConflictLost;
                pkt->blame->charge(cause);
                blame_->charge(id_, o, cause);
                return true;
            });
    }
}

Router::InputVcView
Router::inputVcView(PortId p, VcId v) const
{
    int s = core_.slot(p, v);
    auto si = static_cast<std::size_t>(s);
    InputVcView view;
    view.occupancy = static_cast<int>(core_.fifo[si].size());
    view.active = core_.active(s);
    view.outPort = core_.outPort[si];
    view.outVc = core_.outVc[si];
    view.headSince = core_.headSince[si];
    view.pkt = core_.pkt[si] ? core_.pkt[si]->id : 0;
    return view;
}

} // namespace hnoc
