# Empty compiler generated dependencies file for flit_trace.
# This may be replaced when dependencies are built.
