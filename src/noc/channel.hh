/**
 * @file
 * Unidirectional flit channel with a reverse credit path.
 *
 * A channel has a fixed width in bits; its lane count (width divided by
 * the network flit width) is the number of flits it can carry per cycle.
 * Wide 256 b channels in HeteroNoC carry two combined 128 b flits per
 * cycle (§3.2). Delivery is a simple constant-delay pipe.
 */

#ifndef HNOC_NOC_CHANNEL_HH
#define HNOC_NOC_CHANNEL_HH

#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "noc/flit.hh"
#include "telemetry/metrics.hh"

namespace hnoc
{

/** Constant-latency flit pipe plus reverse credit pipe. */
class Channel
{
  public:
    /**
     * @param width_bits physical wire width
     * @param lanes flits transferable per cycle (width / flit width)
     * @param flit_delay cycles from send to delivery (includes the
     *        sender's switch-traversal stage)
     * @param credit_delay cycles for the reverse credit path
     */
    Channel(int id, int width_bits, int lanes, int flit_delay,
            int credit_delay)
        : id_(id), widthBits_(width_bits), lanes_(lanes),
          flitDelay_(flit_delay), creditDelay_(credit_delay)
    {}

    int id() const { return id_; }
    int widthBits() const { return widthBits_; }
    int lanes() const { return lanes_; }
    int flitDelay() const { return flitDelay_; }

    /** Send a flit; it is delivered at now + flitDelay. */
    void
    sendFlit(const Flit &flit, Cycle now)
    {
        bool paired = false;
        if (now == lastSendCycle_) {
            ++sendsThisCycle_;
            if (sendsThisCycle_ > lanes_)
                panic("channel %d oversubscribed (%d lanes)", id_, lanes_);
            if (sendsThisCycle_ == 2) {
                ++pairedCycles_;
                paired = true;
            }
        } else {
            lastSendCycle_ = now;
            sendsThisCycle_ = 1;
            ++busyCycles_;
        }
        ++flitsSent_;
        if (kTelemetryEnabled && telemetry_) {
            telemetry_->add(Ctr::LinkFlits, telRouter_, telPort_);
            if (paired)
                telemetry_->add(Ctr::LinkPaired, telRouter_, telPort_);
        }
        flitPipe_.emplace_back(now + static_cast<Cycle>(flitDelay_), flit);
    }

    /** Send a credit for @p vc back to the channel's driver. */
    void
    sendCredit(VcId vc, Cycle now)
    {
        creditPipe_.emplace_back(now + static_cast<Cycle>(creditDelay_), vc);
    }

    /** Collect flits arriving at @p now. @return count delivered. */
    int
    deliverFlits(Cycle now, std::vector<Flit> &out)
    {
        int n = 0;
        while (!flitPipe_.empty() && flitPipe_.front().first <= now) {
            out.push_back(flitPipe_.front().second);
            flitPipe_.pop_front();
            ++n;
        }
        return n;
    }

    /** Collect credits arriving at @p now. @return count delivered. */
    int
    deliverCredits(Cycle now, std::vector<VcId> &out)
    {
        int n = 0;
        while (!creditPipe_.empty() && creditPipe_.front().first <= now) {
            out.push_back(creditPipe_.front().second);
            creditPipe_.pop_front();
            ++n;
        }
        return n;
    }

    bool
    idle() const
    {
        return flitPipe_.empty() && creditPipe_.empty();
    }

    /** @name In-flight introspection (conservation audit) */
    ///@{
    /** Flits for @p vc currently in the forward pipe. */
    int
    pipeFlits(VcId vc) const
    {
        int n = 0;
        for (const auto &e : flitPipe_)
            if (e.second.vc == vc)
                ++n;
        return n;
    }

    /** Credits for @p vc currently in the reverse pipe. */
    int
    pipeCredits(VcId vc) const
    {
        int n = 0;
        for (const auto &e : creditPipe_)
            if (e.second == vc)
                ++n;
        return n;
    }
    ///@}

    /** @name Measurement counters (reset via resetStats). */
    ///@{
    std::uint64_t flitsSent() const { return flitsSent_; }
    std::uint64_t busyCycles() const { return busyCycles_; }
    std::uint64_t pairedCycles() const { return pairedCycles_; }

    void
    resetStats()
    {
        flitsSent_ = 0;
        busyCycles_ = 0;
        pairedCycles_ = 0;
    }

    /** Flit-lane utilization over @p cycles elapsed cycles. */
    double
    laneUtilization(std::uint64_t cycles) const
    {
        if (cycles == 0)
            return 0.0;
        return static_cast<double>(flitsSent_) /
               (static_cast<double>(lanes_) * static_cast<double>(cycles));
    }
    ///@}

    /**
     * Attach a metrics registry; link-flit counters are attributed to
     * the driving router's (router, out-port) pair. Pass nullptr to
     * detach.
     */
    void
    setTelemetry(MetricRegistry *reg, int driver_router, int driver_port)
    {
        telemetry_ = reg;
        telRouter_ = driver_router;
        telPort_ = driver_port;
    }

  private:
    int id_;
    int widthBits_;
    int lanes_;
    int flitDelay_;
    int creditDelay_;

    std::deque<std::pair<Cycle, Flit>> flitPipe_;
    std::deque<std::pair<Cycle, VcId>> creditPipe_;

    MetricRegistry *telemetry_ = nullptr;
    int telRouter_ = -1;
    int telPort_ = -1;

    Cycle lastSendCycle_ = CYCLE_NEVER;
    int sendsThisCycle_ = 0;
    std::uint64_t flitsSent_ = 0;
    std::uint64_t busyCycles_ = 0;
    std::uint64_t pairedCycles_ = 0;
};

} // namespace hnoc

#endif // HNOC_NOC_CHANNEL_HH
