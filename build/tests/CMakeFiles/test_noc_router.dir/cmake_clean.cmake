file(REMOVE_RECURSE
  "CMakeFiles/test_noc_router.dir/noc/test_router.cc.o"
  "CMakeFiles/test_noc_router.dir/noc/test_router.cc.o.d"
  "test_noc_router"
  "test_noc_router.pdb"
  "test_noc_router[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_noc_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
