/**
 * @file
 * Data-oriented (structure-of-arrays) router state.
 *
 * The per-cycle router hot path used to traverse per-port/per-VC
 * objects; at mid load that traversal — not idle-component iteration —
 * is the dominant cost (VA scanned every slot, SA scanned every slot
 * once per output port). RouterCore packs the per-input-VC pipeline
 * state into parallel arrays indexed by slot = port * vcs + vc, and
 * keeps the allocator request sets as bitmasks with one bit per slot:
 *
 *  - rcMask:    head flit buffered, route not yet computed;
 *  - vaReqMask: route computed, no downstream VC allocated yet;
 *  - saReqMask: per output port — slots whose packet holds a VC on
 *               that port (the SA candidate set).
 *
 * VA/SA then iterate only the set bits, in the same rotating-priority
 * order as the legacy per-candidate loops (bitops::forEachSetCyclic),
 * so grant sequences — and therefore simulation results — are
 * bit-identical; see DESIGN.md "SoA router core".
 *
 * Hot/cold packing (§6g): the parallel arrays and request masks are
 * not separate vectors but raw pointers into one owned, 64-byte
 * aligned buffer, each section starting on its own cache line. A
 * cycle's RC/VA/SA work therefore streams one contiguous region per
 * router instead of a dozen scattered heap blocks — the unit the
 * cache-blocked Network step order is sized around. Per-output
 * downstream credit counters are likewise packed into a second
 * aligned buffer (one 64-byte-aligned row per output port) built by
 * finalizeWiring() once all ports are connected.
 *
 * Everything is sized exactly once (init / finalizeWiring), so the
 * steady state performs zero heap allocations (test_perf_zero_alloc,
 * which also pins the sizing formulas below).
 */

#ifndef HNOC_NOC_ROUTER_CORE_HH
#define HNOC_NOC_ROUTER_CORE_HH

#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

#include "common/bitops.hh"
#include "common/hot_arena.hh"
#include "common/logging.hh"
#include "common/ring_buffer.hh"
#include "common/types.hh"
#include "noc/flit.hh"

namespace hnoc
{

class Channel;

/** SoA input-VC state plus per-output-port allocator state. */
struct RouterCore
{
    /** Output-port allocator state. Downstream-VC credit counts live
     *  in a per-port row of the packed credit buffer (indexed by
     *  downstream VC); the allocated set is a single word, bounding
     *  downstream VC counts at 64. */
    struct Output
    {
        Channel *chan = nullptr;
        int lanes = 1;
        int downVcs = 0;
        std::uint64_t allocMask = 0; ///< allocated downstream VCs
        int *credits = nullptr;      ///< per downstream VC (packed row)
        /** Grant-driven part of the SA rotating pointer; the
         *  per-cycle part is implicit (ptr = (rrOffset + now) %
         *  total), so skipped idle cycles cannot desynchronise it. */
        unsigned rrOffset = 0;
        /** Initial credit count, held until finalizeWiring(). */
        int initDepth = 0;
    };

    int ports = 0;
    int vcs = 0;
    int total = 0; ///< ports * vcs input-VC slots
    int words = 0; ///< 64-bit words per slot mask

    /** @name Per-slot parallel arrays (slot = port * vcs + vc),
     *  pointing into the packed hot buffer (hotStore_) */
    ///@{
    std::vector<RingBuffer<Flit>> fifo; ///< fixed capacity = depth
    PortId *outPort = nullptr;
    VcId *outVc = nullptr; ///< INVALID until VA succeeds
    VcId *vcLo = nullptr;  ///< admissible downstream VC range
    VcId *vcHi = nullptr;
    Cycle *headSince = nullptr;  ///< when the head became ready
    Cycle *headArrive = nullptr; ///< head flit's buffer-write cycle
                                 ///< (CYCLE_NEVER while empty)
    Packet **pkt = nullptr;
    ///@}

    /** @name Request bitmasks, one bit per slot (hot buffer) */
    ///@{
    std::uint64_t *activeMask = nullptr; ///< slot owns a route
    std::uint64_t *rcMask = nullptr;     ///< head awaiting RC
    std::uint64_t *vaReqMask = nullptr;  ///< awaiting a VC grant
    /** SA candidates per output port, flattened [port * words]. */
    std::uint64_t *saReqMask = nullptr;
    ///@}

    /** @name Per-input-port SA scratch (hot buffer): grants issued
     *  this cycle and the output port they fed (the DSET two-reads /
     *  same-output constraint). Living in the packed buffer keeps the
     *  per-cycle reset off scattered heap lines. */
    ///@{
    int *saGrants = nullptr;
    PortId *saGrantOut = nullptr;
    ///@}

    std::vector<Channel *> inChan; ///< upstream channel per input port
    std::vector<Output> outputs;

    void
    init(int num_ports, int num_vcs, int buffer_depth)
    {
        ports = num_ports;
        vcs = num_vcs;
        total = num_ports * num_vcs;
        words = bitops::maskWords(total);

        // Pack every slot's FIFO ring into one contiguous per-router
        // allocation (§6g): slot i owns fifoStore_[i*cap, (i+1)*cap).
        // One allocation replaces `total` scattered ones, so the
        // pipeline's buffer reads/writes stream instead of chasing
        // heap pointers.
        auto n = static_cast<std::size_t>(total);
        std::size_t cap = RingBuffer<Flit>::boundCapacity(
            static_cast<std::size_t>(buffer_depth));
        fifoStore_.assign(n * cap, Flit{});
        fifoBase_ = fifoStore_.data();
        fifo.resize(n);
        for (std::size_t i = 0; i < n; ++i)
            fifo[i].bindStorage(fifoStore_.data() + i * cap,
                                static_cast<std::size_t>(buffer_depth));

        // Lay the masks and slot arrays out in one aligned buffer:
        // every section starts on a 64-byte boundary (units below are
        // uint64 words; 8 words = one cache line).
        auto w = static_cast<std::size_t>(words);
        std::size_t u32Sect = alignLine((n + 1) / 2); // n int32 values
        std::size_t u64Sect = alignLine(n);
        std::size_t off = 0;
        std::size_t offActive = off;
        off += alignLine(w);
        std::size_t offRc = off;
        off += alignLine(w);
        std::size_t offVa = off;
        off += alignLine(w);
        std::size_t offSa = off;
        off += alignLine(w * static_cast<std::size_t>(ports));
        std::size_t offHeadArrive = off;
        off += u64Sect;
        std::size_t offHeadSince = off;
        off += u64Sect;
        std::size_t offPkt = off;
        off += u64Sect;
        std::size_t offOutPort = off;
        off += u32Sect;
        std::size_t offOutVc = off;
        off += u32Sect;
        std::size_t offVcLo = off;
        off += u32Sect;
        std::size_t offVcHi = off;
        off += u32Sect;
        std::size_t portSect =
            alignLine((static_cast<std::size_t>(ports) + 1) / 2);
        std::size_t offSaGrants = off;
        off += portSect;
        std::size_t offSaGrantOut = off;
        off += portSect;

        hotStore_.assign(off + kLineWords, 0);
        hotWords_ = off + kLineWords;
        std::uint64_t *base = alignedBase();
        activeMask = base + offActive;
        rcMask = base + offRc;
        vaReqMask = base + offVa;
        saReqMask = base + offSa;
        headArrive = base + offHeadArrive;
        headSince = base + offHeadSince;
        pkt = reinterpret_cast<Packet **>(base + offPkt);
        outPort = reinterpret_cast<PortId *>(base + offOutPort);
        outVc = reinterpret_cast<VcId *>(base + offOutVc);
        vcLo = reinterpret_cast<VcId *>(base + offVcLo);
        vcHi = reinterpret_cast<VcId *>(base + offVcHi);
        saGrants = reinterpret_cast<int *>(base + offSaGrants);
        saGrantOut = reinterpret_cast<PortId *>(base + offSaGrantOut);

        for (int p = 0; p < ports; ++p) {
            saGrants[p] = 0;
            saGrantOut[p] = INVALID_PORT;
        }

        for (std::size_t i = 0; i < n; ++i) {
            outPort[i] = INVALID_PORT;
            outVc[i] = INVALID_VC;
            vcLo[i] = 0;
            vcHi[i] = 0;
            headSince[i] = 0;
            headArrive[i] = CYCLE_NEVER;
            pkt[i] = nullptr;
        }

        inChan.assign(static_cast<std::size_t>(ports), nullptr);
        outputs.assign(static_cast<std::size_t>(ports), Output{});
        creditStore_.clear();
    }

    int
    slot(PortId p, VcId v) const
    {
        return p * vcs + v;
    }

    bool
    active(int s) const
    {
        return bitops::maskTest(activeMask, s);
    }

    /** SA candidate mask of output port @p p. */
    std::uint64_t *
    saReq(PortId p)
    {
        return saReqMask + static_cast<std::size_t>(p) *
                               static_cast<std::size_t>(words);
    }

    const std::uint64_t *
    saReq(PortId p) const
    {
        return saReqMask + static_cast<std::size_t>(p) *
                               static_cast<std::size_t>(words);
    }

    /** Wire output port @p p. @p down_vcs is capped at 64 by the
     *  single-word allocated/credit masks. Credit counters become
     *  live when finalizeWiring() packs them. */
    void
    connectOutput(PortId p, Channel *chan, int chan_lanes, int down_vcs,
                  int down_depth)
    {
        if (down_vcs > bitops::kWordBits)
            fatal("router core: %d downstream VCs exceed the 64-wide "
                  "allocator mask", down_vcs);
        Output &op = outputs[static_cast<std::size_t>(p)];
        op.chan = chan;
        op.lanes = chan_lanes;
        op.downVcs = down_vcs;
        op.allocMask = 0;
        op.credits = nullptr;
        op.initDepth = down_depth;
    }

    /**
     * Pack per-output credit counters into one aligned buffer — one
     * 64-byte-aligned row of roundUp(max downVcs, 16) ints per port —
     * and point every Output::credits at its row. Call once, after
     * the last connectOutput(); allocates the only storage that
     * cannot be sized in init() (downstream VC counts are
     * heterogeneous and only known after wiring).
     */
    void
    finalizeWiring()
    {
        int maxVcs = 0;
        for (const Output &op : outputs)
            maxVcs = op.downVcs > maxVcs ? op.downVcs : maxVcs;
        if (maxVcs == 0)
            return;
        creditRowInts_ = static_cast<std::size_t>((maxVcs + 15) / 16) * 16;
        creditInts_ = static_cast<std::size_t>(ports) * creditRowInts_ + 16;
        creditStore_.assign(creditInts_, 0);
        auto addr = reinterpret_cast<std::uintptr_t>(creditStore_.data());
        int *base = creditStore_.data() +
                    (64 - addr % 64) % 64 / sizeof(int);
        creditBase_ = base;
        for (std::size_t p = 0; p < outputs.size(); ++p) {
            Output &op = outputs[p];
            op.credits = base + p * creditRowInts_;
            for (int v = 0; v < op.downVcs; ++v)
                op.credits[v] = op.initDepth;
        }
    }

    /**
     * Steady-state memory footprint of the SoA arrays, from container
     * capacities: per-slot FIFO storage, the packed hot buffer (slot
     * arrays + request bitmasks), and the packed per-output credit
     * buffer. Everything here is sized once in init() /
     * finalizeWiring(), so the value is constant after wiring — the
     * sizing contract tests pin it against the layout formulas.
     */
    std::uint64_t
    footprintBytes() const
    {
        std::uint64_t b = 0;
        b += fifo.capacity() * sizeof(RingBuffer<Flit>);
        for (const auto &f : fifo)
            b += static_cast<std::uint64_t>(f.capacity()) * sizeof(Flit);
        b += hotWords_ * sizeof(std::uint64_t);
        b += creditInts_ * sizeof(int);
        b += inChan.capacity() * sizeof(Channel *);
        b += outputs.capacity() * sizeof(Output);
        return b;
    }

    /** Pull the step working set toward the cache one active-list
     *  entry ahead of the step call (§6g): the leading request-mask
     *  lines of the packed hot buffer (the hardware prefetcher
     *  streams the rest of the contiguous buffer), the packed credit
     *  rows, and the FIFO directory. */
    void
    prefetchStep() const
    {
        if (activeMask) {
            bitops::prefetch(activeMask);
            bitops::prefetch(saReqMask);
        }
        if (creditBase_)
            bitops::prefetch(creditBase_);
        if (fifoBase_)
            bitops::prefetch(fifoBase_);
    }

    /** Bytes moveToArena() will carve (each section 64-B aligned). */
    std::size_t
    arenaBytes() const
    {
        auto r64 = [](std::size_t b) { return (b + 63) / 64 * 64; };
        return r64(fifoStore_.size() * sizeof(Flit)) +
               r64(hotWords_ * sizeof(std::uint64_t)) +
               r64(creditInts_ * sizeof(int));
    }

    /**
     * Relocate the packed FIFO, hot-section, and credit storage into
     * @p arena (§6g): contents are copied verbatim, every pointer is
     * re-based, and the self-owned vectors are released. Call after
     * finalizeWiring() and before the first step. Exhaustion leaves
     * the remaining sections self-owned — placement is a performance
     * property only, so a partial move is still correct.
     */
    void
    moveToArena(HotArena &arena)
    {
        if (!fifoStore_.empty()) {
            auto *nf = reinterpret_cast<Flit *>(
                arena.alloc(fifoStore_.size() * sizeof(Flit)));
            if (nf != nullptr) {
                std::size_t cap = fifoStore_.size() / fifo.size();
                for (std::size_t i = 0; i < fifo.size(); ++i)
                    fifo[i].moveStorageTo(nf + i * cap);
                fifoBase_ = nf;
                fifoStore_ = std::vector<Flit>();
            }
        }
        if (!hotStore_.empty()) {
            auto *nb = reinterpret_cast<std::uint64_t *>(
                arena.alloc(hotWords_ * sizeof(std::uint64_t)));
            if (nb != nullptr) {
                std::uint64_t *ob = alignedBase();
                std::memcpy(nb, ob,
                            (hotWords_ - kLineWords) *
                                sizeof(std::uint64_t));
                auto rebase = [&](auto *&p) {
                    using P = std::remove_reference_t<decltype(p)>;
                    p = reinterpret_cast<P>(
                        reinterpret_cast<char *>(nb) +
                        (reinterpret_cast<char *>(p) -
                         reinterpret_cast<char *>(ob)));
                };
                rebase(activeMask);
                rebase(rcMask);
                rebase(vaReqMask);
                rebase(saReqMask);
                rebase(headArrive);
                rebase(headSince);
                rebase(pkt);
                rebase(outPort);
                rebase(outVc);
                rebase(vcLo);
                rebase(vcHi);
                rebase(saGrants);
                rebase(saGrantOut);
                hotStore_ = std::vector<std::uint64_t>();
            }
        }
        if (!creditStore_.empty() && creditBase_ != nullptr) {
            auto *nc = reinterpret_cast<int *>(
                arena.alloc(creditInts_ * sizeof(int)));
            if (nc != nullptr) {
                std::memcpy(nc, creditBase_,
                            static_cast<std::size_t>(ports) *
                                creditRowInts_ * sizeof(int));
                for (std::size_t p = 0; p < outputs.size(); ++p)
                    if (outputs[p].credits != nullptr)
                        outputs[p].credits = nc + p * creditRowInts_;
                creditBase_ = nc;
                creditStore_ = std::vector<int>();
            }
        }
    }

    /** Mirror the head-of-FIFO arrival cycle after a pop. */
    void
    refreshHead(int s)
    {
        auto i = static_cast<std::size_t>(s);
        headArrive[i] =
            fifo[i].empty() ? CYCLE_NEVER : fifo[i].front().arrivedAt;
    }

  private:
    static constexpr std::size_t kLineWords = 8; ///< u64s per cache line

    /** Round a section size up to whole cache lines (in u64 units). */
    static std::size_t
    alignLine(std::size_t u64s)
    {
        return (u64s + kLineWords - 1) / kLineWords * kLineWords;
    }

    /** First 64-byte-aligned word inside hotStore_. */
    std::uint64_t *
    alignedBase()
    {
        auto addr = reinterpret_cast<std::uintptr_t>(hotStore_.data());
        return hotStore_.data() + (64 - addr % 64) % 64 / sizeof(std::uint64_t);
    }

    /** Packed backing storage for all slot FIFOs (slot i at
     *  [i*cap, (i+1)*cap)); counted in footprintBytes() through the
     *  bound per-slot capacities. */
    std::vector<Flit> fifoStore_;
    /** Backing storage of the aligned hot sections (+1 line of
     *  alignment slack). */
    std::vector<std::uint64_t> hotStore_;
    /** Backing storage of the packed credit rows (+64 B slack). */
    std::vector<int> creditStore_;
    std::size_t creditRowInts_ = 0; ///< ints per port row
    std::size_t hotWords_ = 0;   ///< hot-buffer size (survives a move)
    std::size_t creditInts_ = 0; ///< credit-buffer size (ditto)
    Flit *fifoBase_ = nullptr;   ///< packed FIFO storage (prefetch)
    int *creditBase_ = nullptr;  ///< aligned credit rows (prefetch)
};

} // namespace hnoc

#endif // HNOC_NOC_ROUTER_CORE_HH
