file(REMOVE_RECURSE
  "CMakeFiles/test_hetero_layout.dir/heteronoc/test_layout.cc.o"
  "CMakeFiles/test_hetero_layout.dir/heteronoc/test_layout.cc.o.d"
  "test_hetero_layout"
  "test_hetero_layout.pdb"
  "test_hetero_layout[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hetero_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
