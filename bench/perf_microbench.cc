/**
 * @file
 * Google-benchmark microbenchmarks of the simulator itself: router
 * step throughput, whole-network cycles/second for the baseline and
 * Diagonal+BL configurations, and the analytic models.
 */

#include <benchmark/benchmark.h>

#include "heteronoc/constraints.hh"
#include "heteronoc/layout.hh"
#include "noc/network.hh"
#include "noc/traffic.hh"
#include "power/router_power.hh"

namespace
{

using namespace hnoc;

/** Cycles/second of the full 64-router network under UR load. */
void
networkStep(benchmark::State &state, LayoutKind kind)
{
    NetworkConfig cfg = makeLayoutConfig(kind);
    Network net(cfg);
    TrafficGenerator gen(TrafficPattern::UniformRandom, 64, 8, 7);
    Cycle now = 0;
    for (auto _ : state) {
        for (NodeId n = 0; n < 64; ++n) {
            if (gen.shouldInject(n, 0.03, now)) {
                NodeId dst = gen.pickDest(n);
                if (dst != INVALID_NODE)
                    net.enqueuePacket(n, dst, cfg.dataPacketFlits());
            }
        }
        net.step();
        ++now;
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_NetworkStepBaseline(benchmark::State &state)
{
    networkStep(state, LayoutKind::Baseline);
}
BENCHMARK(BM_NetworkStepBaseline);

void
BM_NetworkStepDiagonalBL(benchmark::State &state)
{
    networkStep(state, LayoutKind::DiagonalBL);
}
BENCHMARK(BM_NetworkStepDiagonalBL);

void
BM_PowerModelCalibration(benchmark::State &state)
{
    for (auto _ : state) {
        auto model =
            RouterPowerModel::calibrated(router_types::BIG, 2.07);
        benchmark::DoNotOptimize(model.powerAtActivity(0.5).total());
    }
}
BENCHMARK(BM_PowerModelCalibration);

void
BM_ResourceAccounting(benchmark::State &state)
{
    NetworkConfig cfg = makeLayoutConfig(LayoutKind::DiagonalBL);
    for (auto _ : state) {
        auto acc = accountResources(cfg);
        benchmark::DoNotOptimize(acc.bufferBits);
    }
}
BENCHMARK(BM_ResourceAccounting);

} // namespace

BENCHMARK_MAIN();
