/**
 * @file
 * MetricRegistry unit tests: counter/gauge/histogram semantics, epoch
 * bucketing, deterministic JSON serialization, and the load-bearing
 * guarantee that a parallel multi-seed run's merged registry is
 * bit-identical to the serial single-thread merge. Also covers the
 * JsonWriter and RunReport exporters.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/job_pool.hh"
#include "noc/network.hh"
#include "noc/sim_harness.hh"
#include "telemetry/json_writer.hh"
#include "telemetry/metrics.hh"
#include "telemetry/run_report.hh"

namespace hnoc
{
namespace
{

MetricRegistry::Dims
smallDims()
{
    MetricRegistry::Dims d;
    d.routers = 4;
    d.ports = 5;
    d.vcs = 2;
    d.gridCols = 2;
    return d;
}

// --------------------------------------------------------- counters --

TEST(MetricRegistry, CounterScopesAccumulateIndependently)
{
    MetricRegistry reg(smallDims());
    // Counts must be uint64-typed: a bare int in the count position
    // would overload-resolve as the next index instead.
    reg.add(Ctr::PacketsInjected);                         // global
    reg.add(Ctr::PacketsInjected, std::uint64_t{3});       // global, n=3
    reg.add(Ctr::OccupancyFlitCycles, 2, std::uint64_t{7}); // router 2
    reg.add(Ctr::XbarGrants, 1, 4);            // (router 1, port 4)
    reg.add(Ctr::XbarGrants, 1, 4);
    reg.add(Ctr::BufferWrites, 0, 1, 1, 5);    // (router 0, port 1, vc 1)

    EXPECT_EQ(reg.total(Ctr::PacketsInjected), 4u);
    EXPECT_EQ(reg.at(Ctr::OccupancyFlitCycles, 2), 7u);
    EXPECT_EQ(reg.at(Ctr::OccupancyFlitCycles, 1), 0u);
    EXPECT_EQ(reg.at(Ctr::XbarGrants, 1, 4), 2u);
    EXPECT_EQ(reg.total(Ctr::XbarGrants), 2u);
    EXPECT_EQ(reg.at(Ctr::BufferWrites, 0, 1, 1), 5u);
    EXPECT_EQ(reg.total(Ctr::BufferWrites), 5u);
}

TEST(MetricRegistry, PerRouterReducesPortAndVcDims)
{
    MetricRegistry reg(smallDims());
    reg.add(Ctr::BufferWrites, 1, 0, 0, 2);
    reg.add(Ctr::BufferWrites, 1, 4, 1, 3);
    reg.add(Ctr::BufferWrites, 3, 2, 0, 1);
    auto per = reg.perRouter(Ctr::BufferWrites);
    ASSERT_EQ(per.size(), 4u);
    EXPECT_EQ(per[0], 0u);
    EXPECT_EQ(per[1], 5u);
    EXPECT_EQ(per[3], 1u);
}

TEST(MetricRegistry, GaugesKeepMaximum)
{
    MetricRegistry reg(smallDims());
    reg.gaugeMax(Gauge::PeakInFlight, 10);
    reg.gaugeMax(Gauge::PeakInFlight, 4);
    EXPECT_EQ(reg.gauge(Gauge::PeakInFlight), 10u);
    reg.occupancySample(2, 6);
    reg.occupancySample(2, 3);
    EXPECT_EQ(reg.gauge(Gauge::PeakOccupancy, 2), 6u);
    EXPECT_EQ(reg.at(Ctr::OccupancyFlitCycles, 2), 9u);
}

TEST(MetricRegistry, HistogramsRecordSamples)
{
    MetricRegistry reg(smallDims());
    reg.histAdd(Hist::PacketLatencyCycles, 10.0);
    reg.histAdd(Hist::PacketLatencyCycles, 30.0);
    EXPECT_EQ(reg.histogram(Hist::PacketLatencyCycles).count(), 2u);
    EXPECT_DOUBLE_EQ(reg.histogram(Hist::PacketLatencyCycles).mean(),
                     20.0);
}

// ------------------------------------------------------------ epochs --

TEST(MetricRegistry, EpochBucketingSplitsCountersByTime)
{
    MetricRegistry reg(smallDims(), /*epoch_cycles=*/10);
    reg.beginWindow(100);
    // Epoch 0: 4 occupancy flit-cycles at router 1.
    for (int c = 0; c < 10; ++c) {
        if (c < 4)
            reg.occupancySample(1, 1);
        reg.tick(100 + static_cast<Cycle>(c));
    }
    // Epoch 1 (partial, 5 cycles): 5 link flits at (0, 0).
    for (int c = 0; c < 5; ++c) {
        reg.add(Ctr::LinkFlits, 0, 0);
        reg.tick(110 + static_cast<Cycle>(c));
    }
    reg.finish();
    reg.finish(); // idempotent

    ASSERT_EQ(reg.epochs().size(), 2u);
    EXPECT_EQ(reg.epochs()[0].cycles, 10u);
    EXPECT_EQ(reg.epochs()[0].occupancyFlitCycles[1], 4u);
    EXPECT_EQ(reg.epochs()[0].linkFlits[0], 0u);
    EXPECT_EQ(reg.epochs()[1].cycles, 5u);
    EXPECT_EQ(reg.epochs()[1].occupancyFlitCycles[1], 0u);
    EXPECT_EQ(reg.epochs()[1].linkFlits[0], 5u);
    EXPECT_EQ(reg.observedCycles(), 15u);
    EXPECT_EQ(reg.windowStart(), 100u);
}

TEST(MetricRegistry, DerivedUtilizationNormalizesByCapacityAndLanes)
{
    MetricRegistry reg(smallDims(), 100);
    reg.setBufferCapacity(0, 10);
    reg.setPortLanes(0, 0, 1);
    reg.setPortInterRouter(0, 0, true);
    reg.setPortLanes(0, 4, 1);
    reg.setPortInterRouter(0, 4, false); // ejection port: excluded
    for (int c = 0; c < 50; ++c) {
        reg.occupancySample(0, 5);       // half full
        reg.add(Ctr::LinkFlits, 0, 0);   // fully busy inter-router link
        reg.add(Ctr::LinkFlits, 0, 4);   // ejection traffic (ignored)
        reg.tick(static_cast<Cycle>(c));
    }
    reg.finish();
    auto buf = reg.bufferUtilizationPercent();
    auto link = reg.linkUtilizationPercent();
    EXPECT_NEAR(buf[0], 50.0, 1e-9);
    EXPECT_NEAR(link[0], 100.0, 1e-9);
    EXPECT_EQ(buf[1], 0.0);
}

// ------------------------------------------------------------- merge --

TEST(MetricRegistry, MergeAddsCountersAndMaxesGauges)
{
    MetricRegistry a(smallDims(), 10);
    MetricRegistry b(smallDims(), 10);
    a.add(Ctr::BufferWrites, 0, 0, 0, 2);
    b.add(Ctr::BufferWrites, 0, 0, 0, 3);
    a.gaugeMax(Gauge::PeakInFlight, 7);
    b.gaugeMax(Gauge::PeakInFlight, 9);
    a.histAdd(Hist::PacketLatencyCycles, 5.0);
    b.histAdd(Hist::PacketLatencyCycles, 15.0);
    a.tick(0);
    b.tick(0);
    a.finish();
    b.finish();
    a.merge(b);
    EXPECT_EQ(a.at(Ctr::BufferWrites, 0, 0, 0), 5u);
    EXPECT_EQ(a.gauge(Gauge::PeakInFlight), 9u);
    EXPECT_EQ(a.histogram(Hist::PacketLatencyCycles).count(), 2u);
    EXPECT_EQ(a.observedCycles(), 2u);
}

TEST(MetricRegistry, MergeRejectsMismatchedDims)
{
    MetricRegistry a(smallDims(), 10);
    MetricRegistry::Dims other = smallDims();
    other.routers = 5;
    MetricRegistry b(other, 10);
    EXPECT_DEATH({ a.merge(b); }, "merge");
}

// ------------------------------------------ parallel-merge identity --

SimPointOptions
tinyOptions()
{
    SimPointOptions opts;
    opts.injectionRate = 0.02;
    opts.warmupCycles = 300;
    opts.measureCycles = 1200;
    opts.drainCycles = 2000;
    opts.collectMetrics = true;
    opts.telemetryEpoch = 256;
    return opts;
}

TEST(MetricRegistry, ParallelMultiSeedMergeIsBitIdenticalToSerial)
{
    if (!kTelemetryEnabled)
        GTEST_SKIP() << "hot-path hooks compiled out (HNOC_TELEMETRY=OFF)";
    NetworkConfig cfg; // baseline 8x8
    const int seeds = 4;

    // Serial reference: run each seed inline, merge in order.
    SimPointOptions opts = tinyOptions();
    std::vector<SimPointResult> serial;
    for (int i = 0; i < seeds; ++i) {
        SimPointOptions o = opts;
        o.seed = derivePointSeed(opts.seed, static_cast<std::uint64_t>(i));
        serial.push_back(
            runOpenLoop(cfg, TrafficPattern::UniformRandom, o));
    }
    auto serial_merged = mergeRegistries(serial);
    ASSERT_NE(serial_merged, nullptr);

    // Parallel run on a 4-thread pool.
    JobPool pool(4);
    auto parallel = runMultiSeed(cfg, TrafficPattern::UniformRandom,
                                 opts, seeds, &pool);
    auto parallel_merged = mergeRegistries(parallel);
    ASSERT_NE(parallel_merged, nullptr);

    // Bit-identical: the serialized JSON documents match byte for byte.
    EXPECT_EQ(serial_merged->json(), parallel_merged->json());

    // And the merge observed all four windows.
    EXPECT_EQ(serial_merged->observedCycles(),
              4u * static_cast<Cycle>(
                       static_cast<double>(opts.measureCycles) *
                       simScale()));
}

TEST(MetricRegistry, RegistryMatchesNetworkCounters)
{
    if (!kTelemetryEnabled)
        GTEST_SKIP() << "hot-path hooks compiled out (HNOC_TELEMETRY=OFF)";
    NetworkConfig cfg;
    SimPointOptions opts = tinyOptions();
    SimPointResult res =
        runOpenLoop(cfg, TrafficPattern::UniformRandom, opts);
    ASSERT_NE(res.metrics, nullptr);
    const MetricRegistry &reg = *res.metrics;

    // The registry's derived heat maps must agree with the legacy
    // Network counters over the same measurement window.
    auto buf = reg.bufferUtilizationPercent();
    ASSERT_EQ(buf.size(), res.bufferUtilPct.size());
    for (std::size_t i = 0; i < buf.size(); ++i)
        EXPECT_NEAR(buf[i], res.bufferUtilPct[i], 0.2) << "router " << i;

    auto link = reg.linkUtilizationPercent();
    ASSERT_EQ(link.size(), res.linkUtilPct.size());
    for (std::size_t i = 0; i < link.size(); ++i)
        EXPECT_NEAR(link[i], res.linkUtilPct[i], 0.2) << "router " << i;

    // Flow conservation inside the window.
    EXPECT_GT(reg.total(Ctr::PacketsInjected), 0u);
    EXPECT_EQ(reg.total(Ctr::PacketsDelivered),
              reg.histogram(Hist::PacketLatencyCycles).count());
    EXPECT_GE(reg.total(Ctr::BufferWrites),
              reg.total(Ctr::BufferReads));
}

// -------------------------------------------------------- JsonWriter --

TEST(JsonWriter, BuildsNestedDocuments)
{
    JsonWriter w;
    w.beginObject();
    w.keyValue("name", "x");
    w.keyValue("n", std::uint64_t{7});
    w.keyValue("pi", 0.5);
    w.keyValue("flag", true);
    w.key("arr").beginArray();
    w.value(1);
    w.value(2);
    w.endArray();
    w.key("nested").beginObject();
    w.endObject();
    w.endObject();
    EXPECT_EQ(w.str(),
              "{\"name\":\"x\",\"n\":7,\"pi\":0.5,\"flag\":true,"
              "\"arr\":[1,2],\"nested\":{}}");
}

TEST(JsonWriter, EscapesStringsAndHandlesNaN)
{
    JsonWriter w;
    w.beginObject();
    w.keyValue("s", "a\"b\\c\n\t");
    w.keyValue("bad", std::nan(""));
    w.endObject();
    EXPECT_EQ(w.str(), "{\"s\":\"a\\\"b\\\\c\\n\\t\",\"bad\":null}");
}

TEST(JsonWriter, SerializationIsDeterministic)
{
    MetricRegistry a(smallDims(), 10);
    MetricRegistry b(smallDims(), 10);
    for (MetricRegistry *r : {&a, &b}) {
        r->add(Ctr::LinkFlits, 1, 2, 3);
        r->histAdd(Hist::NetworkLatencyCycles, 12.5);
        r->tick(0);
        r->finish();
    }
    EXPECT_EQ(a.json(), b.json());
}

// --------------------------------------------------------- RunReport --

TEST(RunReport, EmitsPointsAndMergedRegistry)
{
    NetworkConfig cfg;
    SimPointOptions opts = tinyOptions();
    opts.measureCycles = 600;
    SimPointResult res =
        runOpenLoop(cfg, TrafficPattern::UniformRandom, opts);

    RunReport report("unit_test", "run report test");
    report.meta("kind", "unit");
    report.meta("rate", opts.injectionRate);
    report.addPoint("p0", res);
    report.addRegistry("merged", *res.metrics);
    std::string doc = report.json();

    EXPECT_NE(doc.find("\"schema\":\"hnoc-run-report-v1\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"label\":\"p0\""), std::string::npos);
    EXPECT_NE(doc.find("\"telemetry\""), std::string::npos);
    EXPECT_NE(doc.find("\"merged\""), std::string::npos);
    EXPECT_EQ(doc.front(), '{');
    EXPECT_EQ(doc.back(), '}');
}

} // namespace
} // namespace hnoc
