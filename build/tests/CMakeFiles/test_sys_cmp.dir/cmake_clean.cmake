file(REMOVE_RECURSE
  "CMakeFiles/test_sys_cmp.dir/sys/test_cmp.cc.o"
  "CMakeFiles/test_sys_cmp.dir/sys/test_cmp.cc.o.d"
  "test_sys_cmp"
  "test_sys_cmp.pdb"
  "test_sys_cmp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sys_cmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
