# Empty compiler generated dependencies file for fig08_breakdowns.
# This may be replaced when dependencies are built.
