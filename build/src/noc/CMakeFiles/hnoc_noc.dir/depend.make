# Empty dependencies file for hnoc_noc.
# This may be replaced when dependencies are built.
