#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "common/logging.hh"

namespace hnoc
{

void
RunningStat::reset()
{
    count_ = 0;
    mean_ = 0.0;
    m2_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
}

void
RunningStat::add(double x)
{
    if (count_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

double
RunningStat::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStat::min() const
{
    return count_ ? min_
                  : std::numeric_limits<double>::quiet_NaN();
}

double
RunningStat::max() const
{
    return count_ ? max_
                  : std::numeric_limits<double>::quiet_NaN();
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    // Both non-empty below, so min_/max_ hold real samples.
    std::uint64_t n = count_ + other.count_;
    double delta = other.mean_ - mean_;
    double na = static_cast<double>(count_);
    double nb = static_cast<double>(other.count_);
    double nn = static_cast<double>(n);
    double new_mean = mean_ + delta * nb / nn;
    m2_ = m2_ + other.m2_ + delta * delta * na * nb / nn;
    mean_ = new_mean;
    count_ = n;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0)
{
    if (buckets == 0 || hi <= lo)
        panic("Histogram: invalid range [%f, %f) with %zu buckets",
              lo, hi, buckets);
}

void
Histogram::add(double x)
{
    auto idx = static_cast<std::int64_t>((x - lo_) / width_);
    idx = std::clamp<std::int64_t>(idx, 0,
        static_cast<std::int64_t>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(idx)];
    ++total_;
    sum_ += x;
}

void
Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    total_ = 0;
    sum_ = 0.0;
}

void
Histogram::merge(const Histogram &other)
{
    if (lo_ != other.lo_ || hi_ != other.hi_ ||
        counts_.size() != other.counts_.size())
        panic("Histogram::merge: shape mismatch ([%f,%f)x%zu vs "
              "[%f,%f)x%zu)",
              lo_, hi_, counts_.size(), other.lo_, other.hi_,
              other.counts_.size());
    for (std::size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    total_ += other.total_;
    sum_ += other.sum_;
}

double
Histogram::percentile(double q) const
{
    if (total_ == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    auto target = static_cast<std::uint64_t>(
        q * static_cast<double>(total_ - 1));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        seen += counts_[i];
        if (seen > target)
            return lo_ + (static_cast<double>(i) + 0.5) * width_;
    }
    return hi_;
}

std::string
formatHeatMap(const std::vector<double> &values, int cols,
              const std::string &title)
{
    std::string out = title + "\n";
    if (values.empty() || cols <= 0)
        return out + "(empty)\n";
    int rows = static_cast<int>(values.size()) / cols;
    char buf[32];
    for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
            std::snprintf(buf, sizeof(buf), "%6.1f",
                          values[static_cast<std::size_t>(r * cols + c)]);
            out += buf;
        }
        out += "\n";
    }
    return out;
}

} // namespace hnoc
