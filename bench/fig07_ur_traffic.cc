/**
 * @file
 * Figure 7: latency, throughput and power of the six HeteroNoC
 * layouts vs the homogeneous baseline under uniform-random traffic.
 *
 * Paper shapes: all hetero layouts reduce latency; Diagonal+BL best;
 * +BL > +B; Row2_5 worst of the placements; +BL layouts cut power
 * substantially (buffer-only redistribution does not).
 *
 * Known reproduction deviation (see EXPERIMENTS.md): with 128 b
 * narrow links and 8-flit packets, the bisection rows not covered by
 * wide links cap the +BL packet throughput below the baseline's, so
 * the paper's +24 % throughput claim is not conservation-consistent
 * in this simulator; flit-normalized throughput and the power/layout
 * orderings do reproduce.
 */

#include "bench_util.hh"

using namespace hnoc;
using namespace hnoc::bench;

int
main(int argc, char **argv)
{
    bool adaptive = parseAdaptiveFlag(argc, argv);
    printHeader("Figure 7",
                "UR traffic: load-latency, throughput/latency summary, "
                "power");
    runSyntheticComparison(TrafficPattern::UniformRandom,
                           {0.004, 0.012, 0.020, 0.028, 0.036, 0.044,
                            0.052, 0.060, 0.068},
                           "FIG07_report.json", adaptive);
    return 0;
}
