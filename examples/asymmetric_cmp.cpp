/**
 * @file
 * Case-study II walkthrough (Fig 14): an asymmetric CMP with four
 * large out-of-order cores at the mesh corners running the
 * latency-sensitive libquantum and sixty small in-order cores running
 * the throughput-oriented SPECjbb, compared across the homogeneous
 * network, the Diagonal+BL HeteroNoC, and HeteroNoC with table-based
 * routing that steers large-core packets through the big routers.
 *
 *   ./examples/asymmetric_cmp
 */

#include <algorithm>
#include <cstdio>

#include "heteronoc/layout.hh"
#include "sys/cmp_system.hh"
#include "sys/workloads.hh"

using namespace hnoc;

namespace
{

const std::vector<NodeId> LARGE = {0, 7, 56, 63};

void
runConfig(const char *name, const NetworkConfig &net_cfg)
{
    CmpConfig cmp;
    cmp.asymmetric = true;
    cmp.largeCoreTiles = LARGE;

    CmpSystem sys(net_cfg, cmp);
    for (NodeId n = 0; n < 64; ++n) {
        bool large =
            std::find(LARGE.begin(), LARGE.end(), n) != LARGE.end();
        sys.assignWorkload(n, workloadByName(large ? "libquantum"
                                                   : "SPECjbb"));
    }
    sys.warmCaches(40000);
    sys.run(3000);
    sys.resetStats();
    sys.run(15000);

    double libq = 0.0;
    for (NodeId n : LARGE)
        libq += sys.ipc(n);
    libq /= static_cast<double>(LARGE.size());
    double jbb = 0.0;
    double slow = 1e9;
    for (NodeId n = 0; n < 64; ++n) {
        if (std::find(LARGE.begin(), LARGE.end(), n) != LARGE.end())
            continue;
        jbb += sys.ipc(n);
        slow = std::min(slow, sys.ipc(n));
    }
    jbb /= 60.0;

    std::printf("%-22s libquantum IPC %.3f | SPECjbb IPC %.3f "
                "(slowest %.3f) | net lat %5.1f ns | power %5.1f W\n",
                name, libq, jbb, slow, sys.netLatency().totalNs.mean(),
                sys.networkPower().total());
}

} // namespace

int
main()
{
    std::printf("asymmetric CMP: 4 large cores (corners, libquantum) + "
                "60 small cores (SPECjbb)\n\n");

    runConfig("HomoNoC-XY", makeLayoutConfig(LayoutKind::Baseline));
    runConfig("HeteroNoC-XY", makeLayoutConfig(LayoutKind::DiagonalBL));

    NetworkConfig table = makeLayoutConfig(LayoutKind::DiagonalBL);
    table.routing = RoutingMode::TableXY;
    table.tableRoutedNodes = LARGE;
    runConfig("HeteroNoC-Table+XY", table);

    std::printf("\n(bench/fig14_asymmetric_cmp computes the full "
                "weighted/harmonic speedups)\n");
    return 0;
}
