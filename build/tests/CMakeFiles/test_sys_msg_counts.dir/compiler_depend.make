# Empty compiler generated dependencies file for test_sys_msg_counts.
# This may be replaced when dependencies are built.
