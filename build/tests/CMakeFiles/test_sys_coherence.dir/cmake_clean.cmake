file(REMOVE_RECURSE
  "CMakeFiles/test_sys_coherence.dir/sys/test_coherence.cc.o"
  "CMakeFiles/test_sys_coherence.dir/sys/test_coherence.cc.o.d"
  "test_sys_coherence"
  "test_sys_coherence.pdb"
  "test_sys_coherence[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sys_coherence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
