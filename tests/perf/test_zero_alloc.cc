/**
 * @file
 * Steady-state allocation audit: once the packet arena, scratch
 * vectors, and ring buffers are warm, a loaded Network::step must not
 * touch the heap at all — under both the active-set scheduler and the
 * HNOC_ALWAYS_STEP exhaustive loop. Enforced by replacing global
 * operator new with a counting shim (this binary only).
 *
 * This contract covers the SoA router core: its per-slot arrays,
 * request bitmasks, and per-output credit vectors are sized once in
 * RouterCore::init / connectOutput and never grow, so RC/VA/SA run
 * mask arithmetic over fixed storage. Both schedulers are audited on
 * both layouts because they drive different slot-visit patterns
 * through the same arrays.
 *
 * Telemetry is deliberately left detached: epoch rollover allocates
 * its time-series rows by design and is not part of the hot path
 * contract.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "heteronoc/layout.hh"
#include "noc/network.hh"
#include "noc/router_core.hh"
#include "telemetry/profiler.hh"

namespace
{

std::atomic<bool> g_counting{false};
std::atomic<std::uint64_t> g_allocs{0};

void *
countedAlloc(std::size_t n)
{
    if (g_counting.load(std::memory_order_relaxed))
        g_allocs.fetch_add(1, std::memory_order_relaxed);
    void *p = std::malloc(n ? n : 1);
    if (!p)
        throw std::bad_alloc();
    return p;
}

} // namespace

void *
operator new(std::size_t n)
{
    return countedAlloc(n);
}

void *
operator new[](std::size_t n)
{
    return countedAlloc(n);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace hnoc
{
namespace
{

/**
 * Deterministic load: one data packet per cycle, round-robin over
 * sources with a fixed stride destination (~0.14 flits/node/cycle on
 * the 8x8 mesh — comfortably loaded, nowhere near saturation).
 */
void
injectOne(Network &net, int nodes, int flits)
{
    NodeId src = static_cast<NodeId>(net.now() % nodes);
    NodeId dst = static_cast<NodeId>((src + 17) % nodes);
    if (dst == src)
        dst = static_cast<NodeId>((dst + 1) % nodes);
    net.enqueuePacket(src, dst, flits);
}

std::uint64_t
measureSteadyStateAllocs(NetworkConfig cfg)
{
    Network net(cfg);
    int nodes = net.topology().numNodes();
    int flits = net.dataPacketFlits();

    // Warm the packet arena, free list, source-queue rings, and
    // per-router scratch vectors. The traffic is periodic (period =
    // node count), so the warmed high-water marks cover the measured
    // window exactly.
    for (int c = 0; c < 20000; ++c) {
        injectOne(net, nodes, flits);
        net.step();
    }

    g_allocs.store(0);
    g_counting.store(true);
    for (int c = 0; c < 2000; ++c) {
        injectOne(net, nodes, flits);
        net.step();
    }
    g_counting.store(false);
    EXPECT_GT(net.packetsDelivered(), 0u);
    return g_allocs.load();
}

TEST(ZeroAlloc, CountingShimSeesColdStartAllocations)
{
    // Sanity: the hook must observe the allocations network
    // construction performs, or the zero assertions below are vacuous.
    g_allocs.store(0);
    g_counting.store(true);
    {
        Network net(makeLayoutConfig(LayoutKind::Baseline));
        (void)net;
    }
    g_counting.store(false);
    EXPECT_GT(g_allocs.load(), 0u);
}

TEST(ZeroAlloc, ActiveSetLoadedStepIsAllocationFree)
{
    NetworkConfig cfg = makeLayoutConfig(LayoutKind::Baseline);
    EXPECT_EQ(measureSteadyStateAllocs(cfg), 0u);
}

TEST(ZeroAlloc, AlwaysStepLoadedStepIsAllocationFree)
{
    NetworkConfig cfg = makeLayoutConfig(LayoutKind::Baseline);
    cfg.alwaysStep = true;
    EXPECT_EQ(measureSteadyStateAllocs(cfg), 0u);
}

TEST(ZeroAlloc, HeterogeneousDiagonalBlIsAllocationFree)
{
    NetworkConfig cfg = makeLayoutConfig(LayoutKind::DiagonalBL);
    EXPECT_EQ(measureSteadyStateAllocs(cfg), 0u);
}

TEST(ZeroAlloc, HeterogeneousDiagonalBlAlwaysStepIsAllocationFree)
{
    // The exhaustive loop runs every router's RC/VA/SA every cycle,
    // so this is the densest sweep over the SoA core's bitmask paths
    // (including the wide-channel pairing retry in SA).
    NetworkConfig cfg = makeLayoutConfig(LayoutKind::DiagonalBL);
    cfg.alwaysStep = true;
    EXPECT_EQ(measureSteadyStateAllocs(cfg), 0u);
}

// ------------------------------------------------ sizing contracts --
//
// footprintBytes() claims to report the SoA storage from container
// capacities sized once at wiring time. Pin that claim structurally:
// the value must move by exactly the bytes the layout formula
// predicts when one sizing input changes, and must not move at all
// across steady-state stepping (the memory-side twin of the
// zero-allocation assertions above).

TEST(Footprint, RouterCoreScalesExactlyWithBufferDepth)
{
    // slot FIFO storage is total-slots x depth x sizeof(Flit); every
    // other array in the core is depth-independent.
    RouterCore shallow, deep;
    shallow.init(/*ports=*/5, /*vcs=*/3, /*depth=*/4);
    deep.init(5, 3, 8);
    EXPECT_EQ(deep.footprintBytes() - shallow.footprintBytes(),
              static_cast<std::uint64_t>(5 * 3) * 4 * sizeof(Flit));
}

TEST(Footprint, RouterCoreCountsPerOutputCreditStorage)
{
    RouterCore core;
    core.init(5, 3, 4);
    std::uint64_t before = core.footprintBytes();
    core.connectOutput(/*p=*/0, /*chan=*/nullptr, /*lanes=*/1,
                       /*down_vcs=*/6, /*down_depth=*/4);
    EXPECT_EQ(core.footprintBytes() - before, 6 * sizeof(int));
}

TEST(Footprint, SteadyStateMemoryAuditIsConstant)
{
    // Once warm, continued stepping performs zero allocations (proved
    // above), so no container capacity can change and the audit must
    // be byte-for-byte stable — including the packet arena's
    // high-water capacity row.
    Network net(makeLayoutConfig(LayoutKind::DiagonalBL));
    int nodes = net.topology().numNodes();
    int flits = net.dataPacketFlits();
    for (int c = 0; c < 20000; ++c) {
        injectOne(net, nodes, flits);
        net.step();
    }

    MemoryAudit warm = net.memoryAudit();
    for (int c = 0; c < 2000; ++c) {
        injectOne(net, nodes, flits);
        net.step();
    }
    MemoryAudit later = net.memoryAudit();

    ASSERT_EQ(warm.components.size(), later.components.size());
    for (std::size_t i = 0; i < warm.components.size(); ++i) {
        EXPECT_EQ(warm.components[i].name, later.components[i].name);
        EXPECT_EQ(warm.components[i].bytes, later.components[i].bytes)
            << warm.components[i].name;
    }
    EXPECT_GT(warm.totalBytes(), 0u);
    EXPECT_EQ(warm.totalBytes(), later.totalBytes());
    EXPECT_EQ(warm.tiles, nodes);
}

} // namespace
} // namespace hnoc
